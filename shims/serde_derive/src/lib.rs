//! Offline stand-in for `serde_derive`.
//!
//! The build container has no crates.io access, so the workspace vendors a
//! no-op derive: `#[derive(Serialize)]` / `#[derive(Deserialize)]` expand to
//! nothing. The marker traits live in the sibling `serde` shim; callers that
//! only derive (which is all of this workspace) compile unchanged.

use proc_macro::TokenStream;

/// No-op `Serialize` derive (accepts and ignores `#[serde(...)]` attributes).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive (accepts and ignores `#[serde(...)]` attributes).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
