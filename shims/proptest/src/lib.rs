//! Offline stand-in for the `proptest` property-testing crate.
//!
//! Implements the subset this workspace's test-suite uses: the
//! [`strategy::Strategy`] trait with `prop_map`, range and tuple strategies,
//! [`strategy::Just`], `prop_oneof!`, `proptest::collection::vec`, the
//! `proptest!` macro with `#![proptest_config(..)]`, and the `prop_assert*`
//! macros. Cases are generated from a deterministic per-test RNG (seeded
//! from the test name), so failures are reproducible; unlike the real
//! proptest there is no shrinking — a failing case panics with the regular
//! assertion message.

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Generates values of an output type from a random stream.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`, mirroring
        /// `proptest::Strategy::prop_map`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone, Copy)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between boxed strategies of a common value type —
    /// the engine behind `prop_oneof!`.
    pub struct Union<T> {
        variants: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Builds a union over the given variants (must be non-empty).
        pub fn new(variants: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!variants.is_empty(), "prop_oneof! needs at least one arm");
            Union { variants }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.variants.len() as u64) as usize;
            self.variants[idx].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty strategy range");
            lo + rng.unit_f64() * (hi - lo)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec`s with a random length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `Vec` strategy with lengths in `size`, mirroring
    /// `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec-length range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! The (much simplified) case runner: configuration and RNG.

    /// Per-property configuration, mirroring `proptest::test_runner::Config`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases generated per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per property.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Deterministic per-test RNG (SplitMix64 seeded from the test name).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Builds the RNG for a named test: the stream is a pure function of
        /// the name, so every run generates the same cases.
        #[must_use]
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a offset basis
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// The next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// An unbiased draw from `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
            loop {
                let v = self.next_u64();
                if v <= zone {
                    return v % bound;
                }
            }
        }

        /// A uniform draw in `[0, 1]`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64)
        }
    }
}

/// Declares property tests, mirroring the `proptest!` macro.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal expansion helper for [`proptest!`] — one test function per step.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for __case in 0..__config.cases {
                let _ = __case;
                $(let $arg =
                    $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                $body
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

/// Uniform choice among strategies, mirroring `prop_oneof!`.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(Box::new($strat) as Box<dyn $crate::strategy::Strategy<Value = _>>,)+
        ])
    };
}

/// Property assertion; in this shim it panics like `assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Property equality assertion; panics like `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Property inequality assertion; panics like `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(
            x in 1i64..10,
            y in 0.5f64..2.0,
            z in 3usize..=5,
        ) {
            prop_assert!((1..10).contains(&x));
            prop_assert!((0.5..2.0).contains(&y));
            prop_assert!((3..=5).contains(&z));
        }

        #[test]
        fn oneof_map_and_vec_compose(
            v in crate::collection::vec(0i32..100, 1..20),
            tag in prop_oneof![Just("a"), Just("b")],
            pair in (0u64..10, 0u64..10).prop_map(|(a, b)| a + b),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|&x| (0..100).contains(&x)));
            prop_assert!(tag == "a" || tag == "b");
            prop_assert!(pair <= 18);
        }
    }

    #[test]
    fn cases_are_deterministic_per_test_name() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::for_test("t");
        let mut b = crate::test_runner::TestRng::for_test("t");
        let strat = 0u64..1_000_000;
        for _ in 0..32 {
            assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        }
    }
}
