//! Privacy-accounting invariants under randomized query sequences: whatever
//! the analysts ask, in whatever order, the constraints of the provenance
//! table are never exceeded and the paper's theorems hold empirically.

use proptest::prelude::*;

use dprovdb::core::analyst::{AnalystId, AnalystRegistry};
use dprovdb::core::config::{AnalystConstraintSpec, SystemConfig};
use dprovdb::core::fairness::audit_proportional_fairness;
use dprovdb::core::mechanism::MechanismKind;
use dprovdb::core::processor::{QueryProcessor, QueryRequest};
use dprovdb::core::system::DProvDb;
use dprovdb::engine::catalog::ViewCatalog;
use dprovdb::engine::database::Database;
use dprovdb::engine::datagen::adult::adult_database;
use dprovdb::engine::query::Query;

fn build(
    db: &Database,
    epsilon: f64,
    mechanism: MechanismKind,
    privileges: &[u8],
    spec: AnalystConstraintSpec,
) -> DProvDb {
    let catalog = ViewCatalog::one_per_attribute(db, "adult").unwrap();
    let mut registry = AnalystRegistry::new();
    for (i, &p) in privileges.iter().enumerate() {
        registry.register(&format!("a{i}"), p).unwrap();
    }
    DProvDb::new(
        db.clone(),
        catalog,
        registry,
        SystemConfig::new(epsilon)
            .unwrap()
            .with_seed(17)
            .with_analyst_constraints(spec),
        mechanism,
    )
    .unwrap()
}

/// One randomly generated submission.
#[derive(Debug, Clone)]
struct Submission {
    analyst: usize,
    attribute: &'static str,
    lo: i64,
    span: i64,
    variance: f64,
}

fn submission_strategy(num_analysts: usize) -> impl Strategy<Value = Submission> {
    (
        0..num_analysts,
        prop_oneof![Just("age"), Just("hours_per_week"), Just("education_num")],
        1i64..60,
        1i64..30,
        500.0f64..100_000.0,
    )
        .prop_map(|(analyst, attribute, lo, span, variance)| Submission {
            analyst,
            attribute,
            lo,
            span,
            variance,
        })
}

fn run_sequence(system: &mut DProvDb, submissions: &[Submission]) -> (usize, usize) {
    let mut answered = 0;
    let mut rejected = 0;
    for s in submissions {
        let lo = 17 + (s.lo % 60);
        let request = QueryRequest::with_accuracy(
            Query::range_count("adult", s.attribute, lo.min(90), (lo + s.span).min(90)),
            s.variance,
        );
        let outcome = system.submit(AnalystId(s.analyst), &request).unwrap();
        if outcome.is_answered() {
            answered += 1;
        } else {
            rejected += 1;
        }
    }
    (answered, rejected)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Theorem 5.7 (system privacy guarantee), checked empirically: under
    /// arbitrary adaptive-looking query sequences the provenance table never
    /// exceeds the table constraint, any analyst's row constraint, or any
    /// view's column constraint — for both mechanisms.
    #[test]
    fn provenance_constraints_are_never_exceeded(
        submissions in proptest::collection::vec(submission_strategy(3), 1..60),
        epsilon in 0.4f64..3.2,
    ) {
        let db = adult_database(1_000, 3);
        let privileges = [1u8, 4u8, 8u8];
        for mechanism in [MechanismKind::AdditiveGaussian, MechanismKind::Vanilla] {
            let spec = match mechanism {
                MechanismKind::AdditiveGaussian => AnalystConstraintSpec::MaxNormalized { system_max_level: None },
                MechanismKind::Vanilla => AnalystConstraintSpec::ProportionalSum,
            };
            let mut system = build(&db, epsilon, mechanism, &privileges, spec);
            run_sequence(&mut system, &submissions);

            let provenance = system.provenance();
            // Table constraint under the mechanism's own composition.
            prop_assert!(system.cumulative_epsilon() <= epsilon + 1e-6,
                "{mechanism}: table constraint exceeded");
            // Row constraints.
            for (i, _) in privileges.iter().enumerate() {
                let analyst = AnalystId(i);
                prop_assert!(
                    provenance.row_total(analyst) <= provenance.row_constraint(analyst) + 1e-6,
                    "{mechanism}: row constraint exceeded for analyst {i}"
                );
            }
            // Column constraints (water-filling: equal to the table constraint).
            for view in provenance.view_names() {
                let col = match mechanism {
                    MechanismKind::AdditiveGaussian => provenance.column_max(view),
                    MechanismKind::Vanilla => provenance.column_sum(view),
                };
                prop_assert!(col <= provenance.col_constraint(view) + 1e-6);
            }
            // The per-analyst ledger loss never exceeds the row constraint
            // either (multi-analyst DP guarantee).
            for (i, _) in privileges.iter().enumerate() {
                let analyst = AnalystId(i);
                prop_assert!(
                    system.analyst_epsilon(analyst)
                        <= provenance.row_constraint(analyst) + 1e-6
                );
            }
        }
    }

    /// Theorem 5.6: on identical inputs the additive Gaussian approach
    /// answers at least as many queries as the vanilla approach (checked
    /// with identical constraint specifications for a clean comparison).
    #[test]
    fn additive_answers_at_least_as_many_as_vanilla(
        submissions in proptest::collection::vec(submission_strategy(2), 5..50),
        epsilon in 0.4f64..1.6,
    ) {
        let db = adult_database(1_000, 5);
        let privileges = [1u8, 4u8];
        let spec = AnalystConstraintSpec::ProportionalSum;
        let mut additive = build(&db, epsilon, MechanismKind::AdditiveGaussian, &privileges, spec);
        let mut vanilla = build(&db, epsilon, MechanismKind::Vanilla, &privileges, spec);
        let (answered_additive, _) = run_sequence(&mut additive, &submissions);
        let (answered_vanilla, _) = run_sequence(&mut vanilla, &submissions);
        prop_assert!(
            answered_additive >= answered_vanilla,
            "additive {answered_additive} < vanilla {answered_vanilla}"
        );
    }
}

#[test]
fn proportional_fairness_when_budgets_are_exhausted() {
    // Theorem 5.8: when the analysts keep asking until their budgets are
    // exhausted, consumption is proportional to privilege.
    let db = adult_database(1_000, 9);
    let privileges = [2u8, 8u8];
    let mut system = build(
        &db,
        0.8,
        MechanismKind::AdditiveGaussian,
        &privileges,
        AnalystConstraintSpec::MaxNormalized {
            system_max_level: None,
        },
    );
    // Both analysts ask the same query with ever-tighter accuracy
    // requirements, so their consumption keeps growing until it hits their
    // row constraints ("finish consuming their assigned privacy budget").
    for i in 0..300 {
        let analyst = AnalystId(i % 2);
        let variance = 200_000.0 * 0.97_f64.powi((i / 2) as i32);
        let request = QueryRequest::with_accuracy(
            Query::range_count("adult", "age", 20, 60),
            variance.max(1.0),
        );
        let _ = system.submit(analyst, &request).unwrap();
    }
    let outcomes = system.fairness_outcomes();
    // Both analysts should have consumed essentially their whole constraint.
    let provenance = system.provenance();
    for (i, o) in outcomes.iter().enumerate() {
        let constraint = provenance.row_constraint(AnalystId(i));
        assert!(
            o.consumed_epsilon >= 0.5 * constraint,
            "analyst {i} consumed only {} of {constraint}",
            o.consumed_epsilon
        );
    }
    let audit = audit_proportional_fairness(&outcomes, 0.05);
    assert!(
        audit.is_fair,
        "proportional fairness violated: worst violation {}",
        audit.worst_violation
    );
}

#[test]
fn expansion_trades_fairness_for_utility() {
    // Fig. 7's shape: raising tau answers at least as many queries while the
    // fairness score does not improve.
    let db = adult_database(1_500, 11);
    let privileges = [1u8, 4u8];
    let catalog = || ViewCatalog::one_per_attribute(&db, "adult").unwrap();
    let registry = || {
        let mut r = AnalystRegistry::new();
        r.register("low", 1).unwrap();
        r.register("high", 4).unwrap();
        r
    };
    let mut results = Vec::new();
    for tau in [1.0, 1.9] {
        let config = SystemConfig::new(0.8)
            .unwrap()
            .with_seed(23)
            .with_expansion(tau)
            .unwrap();
        let mut system = DProvDb::new(
            db.clone(),
            catalog(),
            registry(),
            config,
            MechanismKind::AdditiveGaussian,
        )
        .unwrap();
        let mut answered_low = 0usize;
        for i in 0..200 {
            let lo = 17 + (i as i64 % 40);
            let request =
                QueryRequest::with_accuracy(Query::range_count("adult", "age", lo, lo + 10), 600.0);
            let outcome = system.submit(AnalystId(i % 2), &request).unwrap();
            if outcome.is_answered() && i % 2 == 0 {
                answered_low += 1;
            }
        }
        results.push((tau, answered_low, system.stats().answered));
        let _ = privileges;
    }
    let (_, low_at_1, total_at_1) = results[0];
    let (_, low_at_19, total_at_19) = results[1];
    // Expanded constraints let the low-privilege analyst answer at least as
    // many queries, and the overall utility does not drop.
    assert!(low_at_19 >= low_at_1);
    assert!(total_at_19 >= total_at_1);
}
