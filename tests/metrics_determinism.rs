//! Observability is provably inert: running the full query stack with the
//! metrics registry enabled (the default) versus replaced by the no-op
//! registry produces **bit-identical** analyst-visible results — answer
//! values, noise variances, epsilon charges, cache provenance — for both
//! mechanisms. Instrumentation reads clocks and bumps relaxed atomics; it
//! never touches the RNG streams, the admission decisions or the synopsis
//! state, and these tests pin that contract.
//!
//! The suite also covers the trace journal's bounded capacity and the
//! consistency of `QueryService::metrics_snapshot` against the service's
//! own counters, end to end through the protocol `MetricsSnapshot`
//! request.

use std::sync::Arc;
use std::time::Duration;

use dprovdb::api::DProvClient;
use dprovdb::core::analyst::{AnalystId, AnalystRegistry};
use dprovdb::core::config::SystemConfig;
use dprovdb::core::mechanism::MechanismKind;
use dprovdb::core::processor::{QueryOutcome, QueryRequest};
use dprovdb::core::system::DProvDb;
use dprovdb::engine::catalog::ViewCatalog;
use dprovdb::engine::datagen::adult::adult_database;
use dprovdb::engine::query::Query;
use dprovdb::obs::MetricsRegistry;
use dprovdb::server::{Frontend, QueryService, ServiceConfig};

const ANALYSTS: usize = 4;

fn build_system(mechanism: MechanismKind, seed: u64, metrics: MetricsRegistry) -> Arc<DProvDb> {
    let db = adult_database(1_500, 1);
    let catalog = ViewCatalog::one_per_attribute(&db, "adult").unwrap();
    let mut registry = AnalystRegistry::new();
    for i in 0..ANALYSTS {
        registry
            .register(&format!("analyst-{i}"), (i + 1) as u8)
            .unwrap();
    }
    let config = SystemConfig::new(50.0).unwrap().with_seed(seed);
    let mut system = DProvDb::new(db, catalog, registry, config, mechanism).unwrap();
    system.set_metrics(metrics);
    Arc::new(system)
}

/// Per-analyst scripts under the documented determinism conditions (ample
/// budget, one attribute per analyst — see `tests/determinism.rs`), with a
/// repeat at the end so the synopsis cache-hit path is exercised too.
fn script(analyst: usize) -> Vec<QueryRequest> {
    let mut requests: Vec<QueryRequest> = (0..10)
        .map(|i| {
            let query = match analyst % 4 {
                0 => Query::range_count("adult", "age", 20 + i, 40 + i),
                1 => Query::range_count("adult", "hours_per_week", 10 + i, 40 + i),
                2 => Query::range_count("adult", "education_num", 1 + (i % 8), 9 + (i % 8)),
                _ => Query::range_count("adult", "capital_loss", 0, 100 * (i + 1) - 1),
            };
            QueryRequest::with_accuracy(query, 400.0 + 150.0 * i as f64)
        })
        .collect();
    // Re-ask the first query with a looser demand: a cache hit.
    let repeat = requests[0].query.clone();
    requests.push(QueryRequest::with_accuracy(repeat, 50_000.0));
    requests
}

/// Everything an analyst observes about one answer, with floats as raw
/// bits so the comparison is exact.
type ObservedOutcome = (u64, Option<String>, u64, u64, bool, u64);

fn observe(outcome: QueryOutcome) -> ObservedOutcome {
    match outcome {
        QueryOutcome::Answered(a) => (
            a.value.to_bits(),
            a.view,
            a.epsilon_charged.to_bits(),
            a.noise_variance.to_bits(),
            a.from_cache,
            a.epoch,
        ),
        QueryOutcome::Rejected { reason } => panic!("unexpected rejection: {reason}"),
    }
}

/// Runs every analyst's script through a worker-pool service built over a
/// system carrying `metrics`, returning each analyst's ordered, fully
/// observable outcomes plus the service handle's final snapshot inputs.
fn run(mechanism: MechanismKind, seed: u64, metrics: MetricsRegistry) -> Vec<Vec<ObservedOutcome>> {
    let system = build_system(mechanism, seed, metrics);
    let service = Arc::new(QueryService::start(
        Arc::clone(&system),
        ServiceConfig::builder()
            .workers(4)
            .max_batch(8)
            .max_linger(Duration::from_millis(1))
            .build()
            .unwrap(),
    ));
    let sessions: Vec<_> = (0..ANALYSTS)
        .map(|a| service.open_session(AnalystId(a)).unwrap())
        .collect();
    let handles: Vec<_> = sessions
        .into_iter()
        .enumerate()
        .map(|(a, session)| {
            let service = Arc::clone(&service);
            std::thread::spawn(move || {
                script(a)
                    .into_iter()
                    .map(|request| observe(service.submit_wait(session, request).unwrap()))
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    handles.into_iter().map(|h| h.join().unwrap()).collect()
}

#[test]
fn enabled_and_noop_registries_deliver_bit_identical_results() {
    for mechanism in [MechanismKind::Vanilla, MechanismKind::AdditiveGaussian] {
        let enabled = run(mechanism, 29, MetricsRegistry::new());
        let noop = run(mechanism, 29, MetricsRegistry::disabled());
        assert_eq!(
            enabled, noop,
            "{mechanism}: instrumentation changed an analyst-visible bit"
        );
        // Sanity: the runs did real work (answers, charges, a cache hit).
        assert!(enabled.iter().all(|a| a.len() == 11));
        assert!(
            enabled.iter().any(|a| a.last().unwrap().4),
            "{mechanism}: the repeated query should have hit the synopsis cache"
        );
    }
}

#[test]
fn snapshot_agrees_with_service_stats_end_to_end() {
    let metrics = MetricsRegistry::new();
    let system = build_system(MechanismKind::AdditiveGaussian, 31, metrics.clone());
    let service = Arc::new(QueryService::start(
        Arc::clone(&system),
        ServiceConfig::builder().workers(2).build().unwrap(),
    ));
    let frontend = Frontend::new(&service);
    let mut client = DProvClient::connect(frontend.connect(), "obs-test").unwrap();
    client.register("analyst-0").unwrap();
    for request in script(0) {
        client.query(&request).unwrap();
    }
    // The protocol snapshot is the same aggregation the in-process API
    // returns: counters must match the service's own bookkeeping.
    let wire = client.metrics().unwrap();
    let local = service.metrics_snapshot();
    let stats = service.stats();
    for snap in [&wire, &local] {
        assert_eq!(
            snap.counter("query.answered").unwrap(),
            stats.system.answered as u64
        );
        assert_eq!(
            snap.counter("service.submitted").unwrap(),
            stats.submitted as u64
        );
        assert!(snap.counter("synopsis.cache_hits").unwrap() >= 1);
        assert!(snap.counter("frontend.requests").unwrap() >= 11);
        // The queue-depth high-watermark gauge mirrors the always-on
        // ServiceStats field, and every executed batch is size-accounted.
        assert_eq!(
            snap.gauge("queue.depth_hwm").unwrap(),
            stats.queue_depth_hwm as f64
        );
        assert_eq!(
            snap.histogram("batch.size").unwrap().count,
            stats.batches as u64
        );
        assert!(snap.histogram("query.execute_ns").unwrap().count >= 11);
        // Budget gauges cover the provenance matrix: the worked cell's
        // provenance entry has accumulated charges, with headroom left
        // (the script never exhausts its ample budget).
        let gauge = snap
            .budget("analyst-0", "adult.age")
            .expect("budget gauge for the worked (analyst, view) cell");
        assert!(gauge.entry_epsilon > 0.0);
        assert!(gauge.remaining_epsilon > 0.0);
        // An untouched cell carries no charge.
        let idle = snap.budget("analyst-3", "adult.age").unwrap();
        assert_eq!(idle.entry_epsilon, 0.0);
    }
    drop(client);
}

#[test]
fn noop_registry_snapshot_still_serves_always_on_stats() {
    let system = build_system(MechanismKind::Vanilla, 33, MetricsRegistry::disabled());
    let service = Arc::new(QueryService::start(
        Arc::clone(&system),
        ServiceConfig::builder().workers(1).build().unwrap(),
    ));
    let session = service.open_session(AnalystId(0)).unwrap();
    for request in script(0) {
        service.submit_wait(session, request).unwrap();
    }
    let snap = service.metrics_snapshot();
    let stats = service.stats();
    // Registry-backed series are absent or empty...
    assert_eq!(
        snap.histogram("query.execute_ns").unwrap_or_default().count,
        0
    );
    assert!(snap.counter("query.answered").is_none());
    assert!(snap.budgets.is_empty());
    // ...but the registry-free ServiceStats surface is still live.
    assert!(stats.queue_depth_hwm >= 1);
    assert_eq!(
        snap.gauge("queue.depth_hwm").unwrap(),
        stats.queue_depth_hwm as f64
    );
    assert_eq!(
        snap.histogram("batch.size").unwrap().count,
        stats.batches as u64
    );
    assert_eq!(
        snap.counter("service.completed").unwrap(),
        stats.completed as u64
    );
}

#[test]
fn scan_time_records_one_sample_per_batch_at_any_thread_count() {
    // The `exec.scan_ns` histogram carries the *summed* busy time of
    // every scan thread, recorded exactly once per executed batch — a
    // per-thread recording bug would inflate the sample count 8× here.
    let metrics = MetricsRegistry::new();
    let system = build_system(MechanismKind::Vanilla, 41, metrics.clone());
    system.set_scan_threads(8);
    let queries: Vec<Query> = (0..6)
        .map(|i| Query::range_count("adult", "age", 20 + i, 40 + i))
        .collect();
    for _ in 0..3 {
        system.true_answers(&queries).unwrap();
    }
    system.true_answer(&queries[0]).unwrap();
    system.true_answer(&queries[1]).unwrap();
    let scan = metrics
        .snapshot()
        .histogram("exec.scan_ns")
        .expect("scan histogram present");
    // 3 six-query batches + 2 single-query batches = 5 samples.
    assert_eq!(
        scan.count, 5,
        "one exec.scan_ns sample per batch, never per thread"
    );
    assert!(scan.sum > 0, "scans accumulated busy nanoseconds");
}

#[test]
fn trace_journal_capacity_is_bounded_and_export_is_valid() {
    let metrics = MetricsRegistry::with_journal_capacity(16);
    let system = build_system(MechanismKind::Vanilla, 37, metrics.clone());
    let service = Arc::new(QueryService::start(
        Arc::clone(&system),
        ServiceConfig::builder().workers(2).build().unwrap(),
    ));
    let session = service.open_session(AnalystId(0)).unwrap();
    for request in script(0) {
        service.submit_wait(session, request).unwrap();
    }
    // 11 queries × ≥2 stages (queue-wait + execute) overflow 16 slots: the
    // ring keeps the most recent 16 and counts everything it saw.
    let events = metrics.trace_events();
    assert!(
        events.len() <= 16,
        "journal exceeded capacity: {}",
        events.len()
    );
    assert!(metrics.trace_recorded() > 16);
    let trace = service.dump_trace();
    assert!(trace.starts_with('[') && trace.trim_end().ends_with(']'));
    assert!(
        trace.contains("\"ph\": \"X\""),
        "chrome events are complete-phase"
    );
    assert!(trace.contains("execute"), "execute stages present: {trace}");
}

/// Drives a single-analyst workload through a `DProvDb` whose commit path
/// is gated by a `ReplicatedRecorder` over a 3-replica `SimCluster`, with
/// `metrics` wired into the system, the cluster and the recorder.
fn cluster_run(metrics: MetricsRegistry) -> Vec<ObservedOutcome> {
    use dprovdb::cluster::{ReplicatedRecorder, SimCluster};
    use std::sync::Mutex;
    let db = adult_database(800, 1);
    let catalog = ViewCatalog::one_per_attribute(&db, "adult").unwrap();
    let mut registry = AnalystRegistry::new();
    registry.register("analyst-0", 2).unwrap();
    let config = SystemConfig::new(50.0).unwrap().with_seed(43);
    let mut system = DProvDb::new(db, catalog, registry, config, MechanismKind::Vanilla).unwrap();
    system.set_metrics(metrics.clone());
    let cluster = Arc::new(Mutex::new(SimCluster::with_metrics(3, 43, metrics.clone())));
    let recorder = ReplicatedRecorder::new(cluster).with_metrics(metrics);
    system.set_recorder(Arc::new(recorder));
    let mut rng = dprovdb::dp::rng::DpRng::for_stream(43, 0);
    (0..5)
        .map(|i| {
            let query = Query::range_count("adult", "age", 20 + i, 40 + i);
            // Tightening variance: each round recharges (no cache hit).
            let request = QueryRequest::with_accuracy(query, 1200.0 - 150.0 * i as f64);
            observe(
                system
                    .submit_with_rng(AnalystId(0), &request, &mut rng)
                    .unwrap(),
            )
        })
        .collect()
}

#[test]
fn cluster_metrics_are_inert_and_their_ids_are_pinned() {
    // Inertness: the replication-path instrumentation (quorum-ack timings,
    // election counters, lag gauge) must not change an analyst-visible bit.
    let metrics = MetricsRegistry::new();
    let enabled = cluster_run(metrics.clone());
    let noop = cluster_run(MetricsRegistry::disabled());
    assert_eq!(
        enabled, noop,
        "cluster instrumentation changed an analyst-visible bit"
    );
    // Pin the replication series names and that the workload fed them:
    // every submission replicates an access and a commit record, so the
    // quorum-ack histogram holds at least two samples per query.
    let snap = metrics.snapshot();
    assert!(
        snap.counter("cluster.leader_elections").unwrap() >= 1,
        "the replica group must have elected at least once"
    );
    let ack = snap
        .histogram("cluster.quorum_ack_ns")
        .expect("quorum-ack histogram present");
    assert!(ack.count >= 10, "expected >= 10 acks, got {}", ack.count);
    assert!(ack.sum > 0, "acks accumulated wall nanoseconds");
    assert!(
        snap.gauge("cluster.replication_lag").is_some(),
        "replication-lag gauge present"
    );
}

#[test]
fn eviction_counter_id_is_pinned_through_the_snapshot() {
    use dprovdb::cluster::{NodeCaps, Orchestrator};
    let metrics = MetricsRegistry::new();
    let mut orch = Orchestrator::with_metrics(metrics.clone());
    orch.register(
        5,
        NodeCaps {
            name: "exec-5".into(),
            scan_threads: 2,
            deadline_ticks: 0,
        },
    );
    assert_eq!(orch.tick(), vec![5]);
    assert_eq!(metrics.snapshot().counter("cluster.evictions"), Some(1));
}
