//! End-to-end epoch equivalence (the dynamic-data acceptance suite): a
//! workload of interleaved update batches, epoch seals and multi-analyst
//! queries must produce **bit-identical** answers, noise streams and
//! budget charges
//!
//! * whether synopses are incrementally patched or fully rebuilt at each
//!   epoch ([`MaintenanceMode::Incremental`] vs
//!   [`MaintenanceMode::FullRebuild`]), and
//! * whether or not the service crashes and recovers mid-workload —
//!   including a crash landing *between* update WAL frames and their
//!   epoch seal, which must recover to the exact pre-crash sealed state
//!   with the unsealed updates pending.

use dprov_core::analyst::{AnalystId, AnalystRegistry};
use dprov_core::config::SystemConfig;
use dprov_core::mechanism::MechanismKind;
use dprov_core::system::DProvDb;
use dprov_delta::MaintenanceMode;
use dprov_engine::catalog::ViewCatalog;
use dprov_engine::datagen::adult::adult_database;
use dprov_engine::query::Query;
use dprov_server::{DurabilityConfig, QueryService, ServiceConfig, SessionId};
use dprov_workloads::skew::{generate_stream, StreamEvent, StreamingConfig};

const SEED: u64 = 33;
const ANALYSTS: usize = 2;

fn build_system(mechanism: MechanismKind, mode: MaintenanceMode) -> DProvDb {
    let db = adult_database(600, 1);
    let catalog = ViewCatalog::one_per_attribute(&db, "adult").unwrap();
    let mut registry = AnalystRegistry::new();
    registry.register("external", 2).unwrap();
    registry.register("internal", 4).unwrap();
    let config = SystemConfig::new(10.0)
        .unwrap()
        .with_seed(SEED)
        .with_maintenance(mode);
    DProvDb::new(db, catalog, registry, config, mechanism).unwrap()
}

fn service_config() -> ServiceConfig {
    // One worker: the two-session workload is then fully deterministic.
    ServiceConfig::builder()
        .workers(1)
        .updaters(&["loader"])
        .build()
        .unwrap()
}

fn durability(dir: &std::path::Path) -> DurabilityConfig {
    DurabilityConfig::builder(dir)
        .fsync(false)
        .snapshot_every(0)
        .build()
        .unwrap()
}

fn stream() -> Vec<StreamEvent> {
    let db = adult_database(600, 1);
    let mut config = StreamingConfig::update_heavy("adult", ANALYSTS, 14).with_seed(SEED);
    config.base.accuracy_range = (2_000.0, 20_000.0);
    generate_stream(&db, &config).unwrap()
}

/// Everything the acceptance criterion compares, bit-for-bit.
#[derive(Debug, PartialEq)]
struct RunTrace {
    /// `(answered, value bits, epsilon bits, epoch)` per query, in order.
    answers: Vec<(bool, u64, u64, u64)>,
    /// `(epoch, rows, views_patched, invalidated)` per seal, in order.
    seals: Vec<(u64, usize, usize, usize)>,
    ledger: Vec<(AnalystId, u64)>,
    tight_epsilon: u64,
    row_totals: Vec<u64>,
    final_epoch: u64,
    /// Exact audit answers over the final state.
    audits: Vec<u64>,
}

struct Driver<'a> {
    service: &'a QueryService,
    sessions: Vec<SessionId>,
}

impl Driver<'_> {
    fn run(
        &self,
        events: &[StreamEvent],
        answers: &mut Vec<(bool, u64, u64, u64)>,
        seals: &mut Vec<(u64, usize, usize, usize)>,
    ) {
        for event in events {
            match event {
                StreamEvent::Query { analyst, request } => {
                    let outcome = self
                        .service
                        .submit_wait(self.sessions[*analyst], request.clone())
                        .expect("submission must not hard-fail");
                    answers.push(match outcome.answered() {
                        Some(a) => (
                            true,
                            a.value.to_bits(),
                            a.epsilon_charged.to_bits(),
                            a.epoch,
                        ),
                        None => (false, 0, 0, 0),
                    });
                }
                StreamEvent::Update(batch) => {
                    self.service.apply_update(batch).expect("valid batch");
                }
                StreamEvent::Seal => {
                    let report = self.service.seal_epoch().expect("seal");
                    seals.push((
                        report.epoch,
                        report.rows,
                        report.views_patched.len(),
                        report.synopses_invalidated,
                    ));
                }
            }
        }
    }
}

fn trace_of(
    service: &QueryService,
    answers: Vec<(bool, u64, u64, u64)>,
    seals: Vec<(u64, usize, usize, usize)>,
) -> RunTrace {
    let system = service.system();
    let audits: Vec<u64> = [
        Query::count("adult"),
        Query::range_count("adult", "age", 25, 45),
        Query::sum("adult", "hours_per_week"),
    ]
    .iter()
    .map(|q| system.true_answer(q).unwrap().to_bits())
    .collect();
    RunTrace {
        answers,
        seals,
        ledger: system
            .ledger()
            .all()
            .into_iter()
            .map(|(a, b)| (a, b.epsilon.value().to_bits()))
            .collect(),
        tight_epsilon: system.tight_accounting().epsilon.value().to_bits(),
        row_totals: (0..ANALYSTS)
            .map(|a| system.provenance().row_total(AnalystId(a)).to_bits())
            .collect(),
        final_epoch: system.current_epoch(),
        audits,
    }
}

fn open_sessions(service: &QueryService) -> Vec<SessionId> {
    (0..ANALYSTS)
        .map(|a| service.open_session(AnalystId(a)).unwrap())
        .collect()
}

/// One uninterrupted volatile run.
fn uninterrupted(mechanism: MechanismKind, mode: MaintenanceMode) -> RunTrace {
    let events = stream();
    let service = QueryService::start(
        std::sync::Arc::new(build_system(mechanism, mode)),
        service_config(),
    );
    let driver = Driver {
        service: &service,
        sessions: open_sessions(&service),
    };
    let (mut answers, mut seals) = (Vec::new(), Vec::new());
    driver.run(&events, &mut answers, &mut seals);
    trace_of(&service, answers, seals)
}

/// The same workload with a hard drop + recovery at `crash_at` events.
fn interrupted(mechanism: MechanismKind, mode: MaintenanceMode, crash_at: usize) -> RunTrace {
    let events = stream();
    let dir = dprov_storage::scratch_dir(&format!("epoch-eq-{mechanism}-{mode:?}-{crash_at}"));
    let (mut answers, mut seals, sessions) = {
        let (service, _) = QueryService::start_durable(
            build_system(mechanism, mode),
            service_config(),
            durability(&dir),
        )
        .unwrap();
        let driver = Driver {
            service: &service,
            sessions: open_sessions(&service),
        };
        let (mut answers, mut seals) = (Vec::new(), Vec::new());
        driver.run(&events[..crash_at], &mut answers, &mut seals);
        // Checkpoint so the synopsis cache (and with it bit-exact noise
        // *continuation*) survives — same contract as recovery_equivalence.
        service.checkpoint().unwrap();
        let sessions = driver.sessions;
        (answers, seals, sessions)
        // Dropped WITHOUT shutdown: the crash.
    };
    let trace = {
        let (service, report) = QueryService::start_durable(
            build_system(mechanism, mode),
            service_config(),
            durability(&dir),
        )
        .unwrap();
        assert!(report.snapshot_restored);
        let driver = Driver {
            service: &service,
            sessions,
        };
        driver.run(&events[crash_at..], &mut answers, &mut seals);
        trace_of(&service, answers, seals)
    };
    std::fs::remove_dir_all(&dir).ok();
    trace
}

/// The index of an event boundary that lands *between* an update and its
/// seal — the crash window the WAL contract is about.
fn crash_between_update_and_seal(events: &[StreamEvent]) -> usize {
    for i in 1..events.len() {
        if matches!(events[i - 1], StreamEvent::Update(_)) && matches!(events[i], StreamEvent::Seal)
        {
            return i;
        }
    }
    panic!("stream contains no update-then-seal boundary");
}

fn run_matrix(mechanism: MechanismKind) {
    let events = stream();
    assert!(
        events
            .iter()
            .filter(|e| matches!(e, StreamEvent::Seal))
            .count()
            >= 2,
        "the stream must seal several epochs"
    );

    let incremental = uninterrupted(mechanism, MaintenanceMode::Incremental);
    assert!(incremental.final_epoch >= 2);
    assert!(incremental.answers.iter().any(|a| a.0), "answers expected");

    // Incremental == full rebuild, bit for bit.
    let rebuilt = uninterrupted(mechanism, MaintenanceMode::FullRebuild);
    assert_eq!(
        incremental, rebuilt,
        "{mechanism}: incremental maintenance must be bit-identical to full rebuild"
    );

    // A mid-workload crash + recovery is invisible (incremental mode),
    // including when the crash lands between update frames and their seal.
    let mid = events.len() / 2;
    let crashed = interrupted(mechanism, MaintenanceMode::Incremental, mid);
    assert_eq!(
        incremental, crashed,
        "{mechanism}: a mid-workload restart must be invisible"
    );
    let window = crash_between_update_and_seal(&events);
    let crashed_in_window = interrupted(mechanism, MaintenanceMode::Incremental, window);
    assert_eq!(
        incremental, crashed_in_window,
        "{mechanism}: a crash between update WAL frames and the epoch seal must recover \
         to the exact pre-crash sealed state and continue bit-identically"
    );

    // And the crashed run under full rebuild agrees too (closing the
    // square: both axes compose).
    let crashed_rebuilt = interrupted(mechanism, MaintenanceMode::FullRebuild, mid);
    assert_eq!(incremental, crashed_rebuilt);
}

#[test]
fn epoch_equivalence_matrix_additive() {
    run_matrix(MechanismKind::AdditiveGaussian);
}

#[test]
fn epoch_equivalence_matrix_vanilla() {
    run_matrix(MechanismKind::Vanilla);
}
