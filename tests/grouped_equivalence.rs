//! The grouped-answering equivalence battery.
//!
//! GROUP BY support is only admissible if it changes *how fast* group
//! cells are answered, never *what* an analyst receives or is charged.
//! This suite pins that contract end-to-end, through the full concurrent
//! service (queue, session lanes, micro-batching, worker pool):
//!
//! * a grouped submission is **bit-identical** — answer values, epsilon
//!   charges, noise variances, cache flags, rejection reasons, and the
//!   final provenance ledger — to submitting the per-group *oracle*
//!   queries ([`GroupByQuery::scalar_queries`]) one by one on an
//!   identically-seeded twin, for **both** mechanisms;
//! * grouped answers do not depend on the executor's `scan_threads`;
//! * the wire protocol (`DProvClient::group_by` over the in-process and
//!   TCP transports) returns exactly what the service computed;
//! * `DProvClient::declare_workload` returns exactly the library
//!   [`Planner`]'s plan for the same database and cost inputs;
//! * star-schema join-folding feeds grouped answering correctly: exact
//!   grouped counts over the folded wide table equal a hand-computed
//!   fact⋈dimension join, and the DP path over the wide table matches its
//!   per-group oracle.

use std::sync::Arc;

use dprovdb::api::DProvClient;
use dprovdb::core::analyst::{AnalystId, AnalystRegistry};
use dprovdb::core::config::SystemConfig;
use dprovdb::core::mechanism::MechanismKind;
use dprovdb::core::processor::{GroupedRequest, QueryOutcome, QueryRequest};
use dprovdb::core::system::DProvDb;
use dprovdb::engine::catalog::ViewCatalog;
use dprovdb::engine::database::Database;
use dprovdb::engine::datagen::adult::adult_database;
use dprovdb::engine::group::GroupByQuery;
use dprovdb::engine::schema::Schema;
use dprovdb::engine::view::ViewDef;
use dprovdb::plan::cost::CostModel;
use dprovdb::plan::planner::Planner;
use dprovdb::server::{Frontend, QueryService, ServiceConfig};
use dprovdb::workloads::star::{
    folded_star_database, planner_probe, star_database, ITEM_TABLE, SALES_TABLE, SALES_WIDE_TABLE,
    STORE_TABLE,
};

const ANALYSTS: usize = 2;
const VARIANCE: f64 = 900.0;

/// Adult system whose catalog can serve multi-attribute groupings: the
/// per-attribute views plus a two-dimensional (sex, race) histogram.
fn adult_system(mechanism: MechanismKind, seed: u64) -> Arc<DProvDb> {
    let db = adult_database(1_200, 1);
    let mut catalog = ViewCatalog::one_per_attribute(&db, "adult").unwrap();
    catalog.add_view(ViewDef::histogram("sex_race", "adult", &["sex", "race"]));
    Arc::new(build(db, catalog, mechanism, seed))
}

/// Star system over the join-folded wide table with one grouped view.
fn star_system(mechanism: MechanismKind, seed: u64) -> Arc<DProvDb> {
    let db = folded_star_database(2_000, 9);
    let mut catalog = ViewCatalog::new();
    catalog.add_view(ViewDef::histogram(
        "region_category",
        SALES_WIDE_TABLE,
        &["store.region", "item.category"],
    ));
    Arc::new(build(db, catalog, mechanism, seed))
}

fn build(db: Database, catalog: ViewCatalog, mechanism: MechanismKind, seed: u64) -> DProvDb {
    let mut registry = AnalystRegistry::new();
    for i in 0..ANALYSTS {
        registry
            .register(&format!("analyst-{i}"), (2 * i + 1) as u8)
            .unwrap();
    }
    let config = SystemConfig::new(80.0).unwrap().with_seed(seed);
    DProvDb::new(db, catalog, registry, config, mechanism).unwrap()
}

fn schema_of(system: &DProvDb, table: &str) -> Schema {
    system.with_database(|db| db.table(table).unwrap().schema().clone())
}

/// Every analyst-visible field of one cell outcome, bit-exact.
#[derive(Debug, Clone, PartialEq)]
enum Observed {
    Answered {
        value: u64,
        epsilon: u64,
        variance: u64,
        from_cache: bool,
        view: Option<String>,
    },
    Rejected(String),
}

fn observe(outcome: &QueryOutcome) -> Observed {
    match outcome {
        QueryOutcome::Answered(a) => Observed::Answered {
            value: a.value.to_bits(),
            epsilon: a.epsilon_charged.to_bits(),
            variance: a.noise_variance.to_bits(),
            from_cache: a.from_cache,
            view: a.view.clone(),
        },
        QueryOutcome::Rejected { reason } => Observed::Rejected(reason.to_string()),
    }
}

fn service_over(system: &Arc<DProvDb>, scan_threads: usize) -> QueryService {
    QueryService::start(
        Arc::clone(system),
        ServiceConfig::builder()
            .workers(2)
            .scan_threads(scan_threads)
            .build()
            .unwrap(),
    )
}

/// Answers `gq` once as a grouped submission through the service and once
/// as its per-group oracle queries on an identically-seeded twin, and
/// asserts both the outcome streams and the provenance ledgers are
/// bit-identical.
fn assert_grouped_matches_oracle(
    make: impl Fn() -> Arc<DProvDb>,
    gq: &GroupByQuery,
    extra_scalars: &[QueryRequest],
) {
    // Grouped path.
    let system = make();
    let service = service_over(&system, 1);
    let session = service.open_session(AnalystId(0)).unwrap();
    for request in extra_scalars {
        service.submit_wait(session, request.clone()).unwrap();
    }
    let grouped = service
        .group_by_wait(session, GroupedRequest::with_accuracy(gq.clone(), VARIANCE))
        .unwrap();
    let grouped_prov = system.provenance();
    service.shutdown();

    // Oracle path: the same cells, one query per group, in the canonical
    // enumeration order, on a twin seeded identically.
    let twin = make();
    let schema = schema_of(&twin, &gq.table);
    let service = service_over(&twin, 1);
    let session = service.open_session(AnalystId(0)).unwrap();
    for request in extra_scalars {
        service.submit_wait(session, request.clone()).unwrap();
    }
    let scalars = gq.scalar_queries(&schema).unwrap();
    assert_eq!(
        scalars.len(),
        grouped.keys.len(),
        "one oracle query per group cell"
    );
    let oracle: Vec<QueryOutcome> = scalars
        .into_iter()
        .map(|q| {
            service
                .submit_wait(session, QueryRequest::with_accuracy(q, VARIANCE))
                .unwrap()
        })
        .collect();
    let oracle_prov = twin.provenance();
    service.shutdown();

    assert_eq!(grouped.outcomes.len(), oracle.len());
    for (cell, (g, o)) in grouped.outcomes.iter().zip(&oracle).enumerate() {
        assert_eq!(
            observe(g),
            observe(o),
            "cell {cell} (key {:?}) diverged from the per-group oracle",
            grouped.keys[cell]
        );
    }
    assert_eq!(
        grouped_prov.row_total(AnalystId(0)).to_bits(),
        oracle_prov.row_total(AnalystId(0)).to_bits(),
        "ledger row totals diverged"
    );
    for view in grouped_prov.view_names() {
        assert_eq!(
            grouped_prov.entry(AnalystId(0), view).to_bits(),
            oracle_prov.entry(AnalystId(0), view).to_bits(),
            "ledger entry for view {view} diverged"
        );
    }
}

#[test]
fn grouped_matches_oracle_vanilla() {
    assert_grouped_matches_oracle(
        || adult_system(MechanismKind::Vanilla, 77),
        &GroupByQuery::count("adult", &["sex", "race"]),
        &[],
    );
}

#[test]
fn grouped_matches_oracle_additive() {
    assert_grouped_matches_oracle(
        || adult_system(MechanismKind::AdditiveGaussian, 77),
        &GroupByQuery::count("adult", &["sex", "race"]),
        &[],
    );
}

#[test]
fn grouped_matches_oracle_single_attribute() {
    assert_grouped_matches_oracle(
        || adult_system(MechanismKind::AdditiveGaussian, 31),
        &GroupByQuery::count("adult", &["education_num"]),
        &[],
    );
}

#[test]
fn grouped_matches_oracle_mid_stream() {
    // The grouped job draws from the session's noise stream at whatever
    // position earlier scalar work left it — interleaving must not skew
    // either side.
    let warmup = vec![QueryRequest::with_accuracy(
        dprovdb::engine::query::Query::range_count("adult", "age", 25, 45),
        700.0,
    )];
    assert_grouped_matches_oracle(
        || adult_system(MechanismKind::Vanilla, 13),
        &GroupByQuery::count("adult", &["sex", "race"]),
        &warmup,
    );
}

#[test]
fn grouped_matches_oracle_on_folded_star() {
    assert_grouped_matches_oracle(
        || star_system(MechanismKind::Vanilla, 41),
        &GroupByQuery::count(SALES_WIDE_TABLE, &["store.region", "item.category"]),
        &[],
    );
}

#[test]
fn grouped_answers_do_not_depend_on_scan_threads() {
    let gq = GroupByQuery::count("adult", &["sex", "race"]);
    let runs: Vec<Vec<Observed>> = [1usize, 8]
        .into_iter()
        .map(|threads| {
            let system = adult_system(MechanismKind::AdditiveGaussian, 19);
            let service = service_over(&system, threads);
            let session = service.open_session(AnalystId(0)).unwrap();
            let grouped = service
                .group_by_wait(session, GroupedRequest::with_accuracy(gq.clone(), VARIANCE))
                .unwrap();
            service.shutdown();
            grouped.outcomes.iter().map(observe).collect()
        })
        .collect();
    assert_eq!(runs[0], runs[1], "scan_threads changed a grouped answer");
}

#[test]
fn grouped_over_the_wire_matches_in_process_service() {
    let gq = GroupByQuery::count("adult", &["sex", "race"]);
    let request = GroupedRequest::with_accuracy(gq, VARIANCE);

    // Reference: the raw service path.
    let system = adult_system(MechanismKind::AdditiveGaussian, 57);
    let service = service_over(&system, 1);
    let session = service.open_session(AnalystId(0)).unwrap();
    let reference = service.group_by_wait(session, request.clone()).unwrap();
    service.shutdown();

    // In-process transport on a twin.
    let service = Arc::new(service_over(
        &adult_system(MechanismKind::AdditiveGaussian, 57),
        1,
    ));
    let frontend = Frontend::new(&service);
    let mut client = DProvClient::connect(frontend.connect(), "in-proc").unwrap();
    client.register("analyst-0").unwrap();
    let in_proc = client.group_by(&request).unwrap();
    client.close().unwrap();

    // Real TCP on another twin.
    let service = Arc::new(service_over(
        &adult_system(MechanismKind::AdditiveGaussian, 57),
        1,
    ));
    let frontend = Frontend::new(&service);
    let listener = frontend.listen("127.0.0.1:0").unwrap();
    let mut client = DProvClient::connect_tcp(listener.local_addr(), "tcp").unwrap();
    client.register("analyst-0").unwrap();
    let tcp = client.group_by(&request).unwrap();
    client.close().unwrap();

    for other in [&in_proc, &tcp] {
        assert_eq!(reference.keys, other.keys);
        let reference: Vec<Observed> = reference.outcomes.iter().map(observe).collect();
        let got: Vec<Observed> = other.outcomes.iter().map(observe).collect();
        assert_eq!(reference, got, "transport changed a grouped answer");
    }
}

#[test]
fn declared_workload_plan_matches_library_planner() {
    let system = star_system(MechanismKind::Vanilla, 3);
    let service = Arc::new(service_over(&system, 1));
    let frontend = Frontend::new(&service);
    let mut client = DProvClient::connect(frontend.connect(), "in-proc").unwrap();
    client.register("analyst-0").unwrap();

    let workload = planner_probe();
    let report = client.declare_workload(&workload).unwrap();
    client.close().unwrap();

    // The library planner, handed the same database and cost inputs.
    let config = system.config();
    let cost = CostModel::new(config.delta.value(), config.total_epsilon.value())
        .with_exec_stats(&system.exec_stats());
    let plan = system
        .with_database(|db| Planner::new(cost).plan(db, &workload))
        .unwrap();

    assert_eq!(report.views, plan.views.len() as u64);
    assert_eq!(report.est_epsilon.to_bits(), plan.est_epsilon.to_bits());
    assert_eq!(
        report.est_materialise_cells.to_bits(),
        plan.est_materialise_cells.to_bits()
    );
    assert_eq!(report.report, plan.report());
    // Declaring is advisory: no budget was spent.
    assert_eq!(system.provenance().row_total(AnalystId(0)), 0.0);
}

#[test]
fn folded_star_grouped_counts_match_hand_join() {
    // Hand-compute the fact ⋈ store ⋈ item join from the *unfolded* star
    // and group it, then compare against exact grouped counts over the
    // join-folded wide table.
    let star = star_database(2_000, 9);
    let store = star.table(STORE_TABLE).unwrap();
    let item = star.table(ITEM_TABLE).unwrap();
    let sales = star.table(SALES_TABLE).unwrap();

    // Dimension lookups: encoded key -> encoded attribute index. Keys are
    // integers with domain 0..N, so the encoded key equals the id.
    let region_of: Vec<u32> = {
        let keys = store.column_at(store.schema().position("store_id").unwrap());
        let regions = store.column_at(store.schema().position("region").unwrap());
        let mut map = vec![0u32; keys.len()];
        for (k, r) in keys.iter().zip(regions) {
            map[*k as usize] = *r;
        }
        map
    };
    let category_of: Vec<u32> = {
        let keys = item.column_at(item.schema().position("item_id").unwrap());
        let categories = item.column_at(item.schema().position("category").unwrap());
        let mut map = vec![0u32; keys.len()];
        for (k, c) in keys.iter().zip(categories) {
            map[*k as usize] = *c;
        }
        map
    };

    let gq = GroupByQuery::count(SALES_WIDE_TABLE, &["store.region", "item.category"]);
    let system = star_system(MechanismKind::Vanilla, 9);
    let schema = schema_of(&system, SALES_WIDE_TABLE);
    let num_categories =
        schema.attributes()[schema.position("item.category").unwrap()].domain_size();
    let num_regions = schema.attributes()[schema.position("store.region").unwrap()].domain_size();

    // Canonical enumeration is row-major, last grouping attribute fastest.
    let mut expected = vec![0.0_f64; num_regions * num_categories];
    let store_ids = sales.column_at(sales.schema().position("store_id").unwrap());
    let item_ids = sales.column_at(sales.schema().position("item_id").unwrap());
    for (s, i) in store_ids.iter().zip(item_ids) {
        let r = region_of[*s as usize] as usize;
        let c = category_of[*i as usize] as usize;
        expected[r * num_categories + c] += 1.0;
    }

    let exact = system.true_group_by(&gq).unwrap();
    assert_eq!(exact, expected, "join-fold diverged from the hand join");
}
