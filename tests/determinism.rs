//! Determinism of the concurrent service: with a fixed system seed, a fixed
//! session-registration order and a fixed per-session submission order, the
//! answers every analyst receives are identical across runs and across
//! worker counts — thread scheduling never leaks into the noise. This
//! validates the per-session RNG seeding scheme
//! (`DpRng::for_stream(system seed, session id)` + per-session FIFO lanes).
//!
//! Scope: the guarantee requires an uncontended budget (near exhaustion,
//! the cross-analyst constraint checks decide accept-vs-reject by arrival
//! order); given that, it holds for the vanilla mechanism on any workload
//! (every release draws only from the session's own stream) and for the
//! additive mechanism when sessions work disjoint views — a view *shared*
//! by racing additive sessions grows its hidden global synopsis in
//! cross-session arrival order, which scheduling can reorder (see the
//! `dprov-server` crate docs). The script below is built to those
//! conditions: ample budget, one attribute per analyst.

use std::sync::Arc;

use dprovdb::core::analyst::{AnalystId, AnalystRegistry};
use dprovdb::core::config::SystemConfig;
use dprovdb::core::mechanism::MechanismKind;
use dprovdb::core::processor::{QueryOutcome, QueryRequest};
use dprovdb::core::system::DProvDb;
use dprovdb::engine::catalog::ViewCatalog;
use dprovdb::engine::datagen::adult::adult_database;
use dprovdb::engine::query::Query;
use dprovdb::server::{QueryService, ServiceConfig};

const ANALYSTS: usize = 4;

fn build_system(mechanism: MechanismKind, seed: u64) -> Arc<DProvDb> {
    let db = adult_database(1_500, 1);
    let catalog = ViewCatalog::one_per_attribute(&db, "adult").unwrap();
    let mut registry = AnalystRegistry::new();
    for i in 0..ANALYSTS {
        registry
            .register(&format!("analyst-{i}"), (i + 1) as u8)
            .unwrap();
    }
    let config = SystemConfig::new(50.0).unwrap().with_seed(seed);
    Arc::new(DProvDb::new(db, catalog, registry, config, mechanism).unwrap())
}

/// The per-analyst query script. Each analyst works an *analyst-specific*
/// attribute so no cross-analyst shared state (the hidden global synopsis)
/// couples their noise; the budget is ample so no mid-run rejection depends
/// on cross-analyst totals. What remains — the answers — is then a pure
/// function of (seed, session id, submission index).
fn script(analyst: usize) -> Vec<QueryRequest> {
    (0..12)
        .map(|i| {
            // In-domain ranges per attribute (age 17..=90, hours 1..=99,
            // education_num 1..=16, capital_loss binned 0..=4499 by 100).
            let query = match analyst % 4 {
                0 => Query::range_count("adult", "age", 20 + i, 40 + i),
                1 => Query::range_count("adult", "hours_per_week", 10 + i, 40 + i),
                2 => Query::range_count("adult", "education_num", 1 + (i % 8), 9 + (i % 8)),
                _ => Query::range_count("adult", "capital_loss", 0, 100 * (i + 1) - 1),
            };
            QueryRequest::with_accuracy(query, 400.0 + 150.0 * i as f64)
        })
        .collect()
}

/// Runs every analyst's script through a service with the given worker
/// count (submissions racing from one thread per analyst) and returns each
/// analyst's ordered answer values.
fn run(mechanism: MechanismKind, seed: u64, workers: usize) -> Vec<Vec<f64>> {
    run_batched(mechanism, seed, workers, 8, std::time::Duration::ZERO)
}

/// Like [`run`], with explicit micro-batch knobs.
fn run_batched(
    mechanism: MechanismKind,
    seed: u64,
    workers: usize,
    max_batch: usize,
    max_linger: std::time::Duration,
) -> Vec<Vec<f64>> {
    run_full(mechanism, seed, workers, max_batch, max_linger, 1).0
}

/// Like [`run_batched`], additionally setting the columnar scan-thread
/// fan-out and returning the final per-analyst budget charges next to
/// the answers.
fn run_full(
    mechanism: MechanismKind,
    seed: u64,
    workers: usize,
    max_batch: usize,
    max_linger: std::time::Duration,
    scan_threads: usize,
) -> (Vec<Vec<f64>>, Vec<(AnalystId, dprovdb::dp::budget::Budget)>) {
    let system = build_system(mechanism, seed);
    let service = Arc::new(QueryService::start(
        Arc::clone(&system),
        ServiceConfig::builder()
            .workers(workers)
            .max_batch(max_batch)
            .max_linger(max_linger)
            .scan_threads(scan_threads)
            .build()
            .unwrap(),
    ));
    // Registration order is fixed (analyst 0 first), so session ids — and
    // with them the per-session noise streams — are reproducible.
    let sessions: Vec<_> = (0..ANALYSTS)
        .map(|a| service.open_session(AnalystId(a)).unwrap())
        .collect();
    let handles: Vec<_> = sessions
        .into_iter()
        .enumerate()
        .map(|(a, session)| {
            let service = Arc::clone(&service);
            std::thread::spawn(move || {
                script(a)
                    .into_iter()
                    .map(
                        |request| match service.submit_wait(session, request).unwrap() {
                            QueryOutcome::Answered(answer) => answer.value,
                            QueryOutcome::Rejected { reason } => {
                                panic!("unexpected rejection: {reason}")
                            }
                        },
                    )
                    .collect::<Vec<f64>>()
            })
        })
        .collect();
    let answers = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let charges = system.ledger().all();
    drop(service);
    (answers, charges)
}

#[test]
fn same_seed_same_answers_across_runs_and_worker_counts() {
    for mechanism in [MechanismKind::Vanilla, MechanismKind::AdditiveGaussian] {
        let baseline = run(mechanism, 7, 1);
        // Re-running with the same seed bit-for-bit reproduces the answers.
        assert_eq!(
            baseline,
            run(mechanism, 7, 1),
            "{mechanism}: same-config rerun diverged"
        );
        // The worker count is a pure throughput knob: 2, 4 and 8 workers
        // interleave executions differently but deliver identical answers.
        for workers in [2, 4, 8] {
            assert_eq!(
                baseline,
                run(mechanism, 7, workers),
                "{mechanism}: answers changed with {workers} workers"
            );
        }
    }
}

#[test]
fn batch_and_linger_settings_do_not_change_per_session_results() {
    // Micro-batching regroups cross-session execution by view; under the
    // documented determinism conditions (ample budget, one attribute per
    // analyst) the per-session answers are a pure function of (seed,
    // session id, submission index), so every batch size and linger
    // setting must reproduce them bit for bit — batching changes *when*
    // work runs, never *what* any analyst receives.
    use std::time::Duration;
    for mechanism in [MechanismKind::Vanilla, MechanismKind::AdditiveGaussian] {
        let baseline = run_batched(mechanism, 21, 1, 1, Duration::ZERO);
        for (workers, max_batch, linger) in [
            (1, 4, Duration::ZERO),
            (1, 16, Duration::from_millis(2)),
            (2, 8, Duration::from_millis(1)),
            (4, 64, Duration::ZERO),
        ] {
            assert_eq!(
                baseline,
                run_batched(mechanism, 21, workers, max_batch, linger),
                "{mechanism}: answers changed at batch={max_batch}, linger={linger:?}, \
                 workers={workers}"
            );
        }
    }
}

#[test]
fn scan_thread_count_never_moves_a_bit() {
    // The columnar executor's parallel shard scan merges per-thread
    // partials in shard order and only fans out reassociation-exact
    // aggregates, so the scan-thread knob is a pure latency/core
    // trade-off: a full service run — micro-batching on, both
    // mechanisms — must produce bit-identical answers (noise included)
    // and bit-identical per-analyst budget charges at 1 and 8 threads.
    for mechanism in [MechanismKind::Vanilla, MechanismKind::AdditiveGaussian] {
        let (answers_1, charges_1) = run_full(mechanism, 31, 2, 8, std::time::Duration::ZERO, 1);
        let (answers_8, charges_8) = run_full(mechanism, 31, 2, 8, std::time::Duration::ZERO, 8);
        assert_eq!(
            answers_1, answers_8,
            "{mechanism}: answers changed with the scan-thread count"
        );
        assert_eq!(
            charges_1, charges_8,
            "{mechanism}: budget charges changed with the scan-thread count"
        );
    }
}

#[test]
fn different_seeds_produce_different_noise() {
    let a = run(MechanismKind::Vanilla, 7, 2);
    let b = run(MechanismKind::Vanilla, 8, 2);
    assert_ne!(a, b, "distinct seeds must yield distinct noise");
    // ... but the same query script: answer counts agree.
    assert_eq!(a.len(), b.len());
    for (va, vb) in a.iter().zip(&b) {
        assert_eq!(va.len(), vb.len());
    }
}

#[test]
fn single_threaded_api_matches_the_service_for_one_worker_sessions() {
    // The legacy &mut self path with the same per-analyst streams: driving
    // DProvDb directly with DpRng::for_stream(seed, session_id) reproduces
    // exactly what the service returns.
    use dprovdb::dp::rng::DpRng;
    let mechanism = MechanismKind::AdditiveGaussian;
    let via_service = run(mechanism, 13, 4);

    let system = build_system(mechanism, 13);
    let mut direct = Vec::new();
    for a in 0..ANALYSTS {
        // Session ids are assigned densely in registration order: analyst a
        // got session id a above.
        let mut rng = DpRng::for_stream(13, a as u64);
        let answers: Vec<f64> = script(a)
            .into_iter()
            .map(|request| {
                match system
                    .submit_with_rng(AnalystId(a), &request, &mut rng)
                    .unwrap()
                {
                    QueryOutcome::Answered(answer) => answer.value,
                    QueryOutcome::Rejected { reason } => panic!("rejected: {reason}"),
                }
            })
            .collect();
        direct.push(answers);
    }
    assert_eq!(via_service, direct);
}
