//! Loopback client/server integration: the versioned analyst protocol
//! served over real TCP must be **observationally identical** to the
//! in-process transport — same seed, same session-registration order,
//! same per-session submission order ⇒ bit-identical answers — and a
//! client must be able to reconnect across a durable service restart and
//! find its session and budgets intact.

use std::sync::Arc;

use dprovdb::api::{codes, DProvClient};
use dprovdb::core::analyst::AnalystRegistry;
use dprovdb::core::config::SystemConfig;
use dprovdb::core::mechanism::MechanismKind;
use dprovdb::core::processor::{QueryOutcome, QueryRequest};
use dprovdb::core::system::DProvDb;
use dprovdb::engine::catalog::ViewCatalog;
use dprovdb::engine::datagen::adult::adult_database;
use dprovdb::engine::query::Query;
use dprovdb::server::{DurabilityConfig, Frontend, QueryService, ServiceConfig};

const ANALYSTS: usize = 3;

fn build_system(seed: u64) -> DProvDb {
    let db = adult_database(1_200, 1);
    let catalog = ViewCatalog::one_per_attribute(&db, "adult").unwrap();
    let mut registry = AnalystRegistry::new();
    for i in 0..ANALYSTS {
        registry
            .register(&format!("analyst-{i}"), (2 * i + 1) as u8)
            .unwrap();
    }
    let config = SystemConfig::new(60.0).unwrap().with_seed(seed);
    DProvDb::new(
        db,
        catalog,
        registry,
        config,
        MechanismKind::AdditiveGaussian,
    )
    .unwrap()
}

/// Analyst-specific scripts over disjoint attributes, the regime where the
/// service's determinism guarantee is exact (see `tests/determinism.rs`).
fn script(analyst: usize) -> Vec<QueryRequest> {
    (0..10)
        .map(|i| {
            let query = match analyst % 3 {
                0 => Query::range_count("adult", "age", 20 + i, 45 + i),
                1 => Query::range_count("adult", "hours_per_week", 10 + i, 40 + i),
                _ => Query::range_count("adult", "education_num", 1 + (i % 8), 9 + (i % 8)),
            };
            QueryRequest::with_accuracy(query, 500.0 + 120.0 * i as f64)
        })
        .collect()
}

fn answers_of(mut clients: Vec<DProvClient>) -> Vec<Vec<f64>> {
    let handles: Vec<_> = clients
        .drain(..)
        .enumerate()
        .map(|(a, mut client)| {
            std::thread::spawn(move || {
                // Pipeline the whole script, then poll outcomes in order.
                let ids: Vec<_> = script(a)
                    .iter()
                    .map(|request| client.submit(request).unwrap())
                    .collect();
                let values = ids
                    .into_iter()
                    .map(|id| match client.poll(id).unwrap() {
                        QueryOutcome::Answered(answer) => answer.value,
                        QueryOutcome::Rejected { reason } => {
                            panic!("unexpected rejection: {reason}")
                        }
                    })
                    .collect::<Vec<f64>>();
                client.close().unwrap();
                values
            })
        })
        .collect();
    handles.into_iter().map(|h| h.join().unwrap()).collect()
}

#[test]
fn tcp_loopback_answers_are_bit_identical_to_in_process() {
    // Pass 1: in-process transport.
    let service = Arc::new(QueryService::start(
        Arc::new(build_system(23)),
        ServiceConfig::builder().workers(4).build().unwrap(),
    ));
    let frontend = Frontend::new(&service);
    let mut clients = Vec::new();
    for a in 0..ANALYSTS {
        let mut client = DProvClient::connect(frontend.connect(), "in-proc").unwrap();
        let descriptor = client.register(&format!("analyst-{a}")).unwrap();
        assert_eq!(descriptor.session, a as u64, "registration order is fixed");
        clients.push(client);
    }
    let in_process = answers_of(clients);

    // Pass 2: a fresh, identically-seeded system served over real TCP.
    let service = Arc::new(QueryService::start(
        Arc::new(build_system(23)),
        ServiceConfig::builder().workers(4).build().unwrap(),
    ));
    let frontend = Frontend::new(&service);
    let listener = frontend.listen("127.0.0.1:0").unwrap();
    let addr = listener.local_addr();
    let mut clients = Vec::new();
    for a in 0..ANALYSTS {
        let mut client = DProvClient::connect_tcp(addr, "tcp").unwrap();
        client.register(&format!("analyst-{a}")).unwrap();
        clients.push(client);
    }
    let over_tcp = answers_of(clients);

    assert_eq!(
        in_process, over_tcp,
        "the transport must be invisible: answers differ between in-process and TCP"
    );
    listener.shutdown();
}

#[test]
fn client_reconnects_across_a_durable_restart_with_budgets_intact() {
    let dir = dprovdb::storage::scratch_dir("client-reconnect");
    let durability = DurabilityConfig::builder(&dir)
        .fsync(false)
        .snapshot_every(0)
        .build()
        .unwrap();

    // Phase 1: serve over TCP, spend some budget, then crash (drop without
    // shutdown — the write-ahead ledger alone must carry the state).
    let (session, spent_before, answers_before) = {
        let (service, _) = QueryService::start_durable(
            build_system(51),
            ServiceConfig::builder().workers(2).build().unwrap(),
            durability.clone(),
        )
        .unwrap();
        let service = Arc::new(service);
        let frontend = Frontend::new(&service);
        let listener = frontend.listen("127.0.0.1:0").unwrap();
        let mut client = DProvClient::connect_tcp(listener.local_addr(), "c1").unwrap();
        let descriptor = client.register("analyst-1").unwrap();
        let answers: Vec<f64> = (0..4)
            .map(|i| {
                match client
                    .query(&QueryRequest::with_accuracy(
                        Query::range_count("adult", "hours_per_week", 10 + i, 50),
                        700.0,
                    ))
                    .unwrap()
                {
                    QueryOutcome::Answered(a) => a.value,
                    QueryOutcome::Rejected { reason } => panic!("rejected: {reason}"),
                }
            })
            .collect();
        let budget = client.budget().unwrap();
        assert!(budget.budget_consumed > 0.0);
        drop(client);
        listener.shutdown();
        drop(frontend);
        // Checkpoint so the snapshot carries the synopsis cache — budget
        // state is WAL-exact without it, but the bit-exact noise-stream
        // continuation asserted below needs the cached synopses too (same
        // protocol as tests/recovery_equivalence.rs).
        service.checkpoint().unwrap();
        (descriptor.session, budget.budget_consumed, answers)
        // `service` dropped here WITHOUT shutdown(): crash-alike.
    };

    // Phase 2: recover, reconnect, resume — budgets and the session's
    // noise stream continue exactly.
    let (service, report) = QueryService::start_durable(
        build_system(51),
        ServiceConfig::builder().workers(2).build().unwrap(),
        durability,
    )
    .unwrap();
    assert_eq!(report.restored_sessions, 1);
    let service = Arc::new(service);
    let frontend = Frontend::new(&service);
    let listener = frontend.listen("127.0.0.1:0").unwrap();
    let mut client = DProvClient::connect_tcp(listener.local_addr(), "c1-back").unwrap();

    // The wrong analyst cannot take the session over TCP either.
    let mut thief = DProvClient::connect_tcp(listener.local_addr(), "thief").unwrap();
    assert_eq!(
        thief.resume("analyst-0", session).unwrap_err().code,
        codes::SESSION_OWNERSHIP
    );

    let descriptor = client.resume("analyst-1", session).unwrap();
    assert!(descriptor.resumed);
    let budget = client.budget().unwrap();
    assert_eq!(
        budget.budget_consumed, spent_before,
        "recovered budget must be bit-exact"
    );

    // The resumed session keeps answering, and the uninterrupted twin run
    // (same seed, same script, no crash) produces the same continuation.
    let continuation = match client
        .query(&QueryRequest::with_accuracy(
            Query::range_count("adult", "hours_per_week", 20, 60),
            900.0,
        ))
        .unwrap()
    {
        QueryOutcome::Answered(a) => a.value,
        QueryOutcome::Rejected { reason } => panic!("rejected: {reason}"),
    };
    listener.shutdown();
    drop(client);
    drop(thief);
    drop(frontend);
    drop(service);

    // Twin run without the crash.
    let twin = Arc::new(QueryService::start(
        Arc::new(build_system(51)),
        ServiceConfig::builder().workers(2).build().unwrap(),
    ));
    let twin_frontend = Frontend::new(&twin);
    // Burn session id 0 so "analyst-1" gets session 1, as in phase 1...
    // it does not: phase 1 registered only one session (id 0). Recreate
    // exactly that order.
    let mut twin_client = DProvClient::connect(twin_frontend.connect(), "twin").unwrap();
    twin_client.register("analyst-1").unwrap();
    let mut twin_answers: Vec<f64> = (0..4)
        .map(|i| {
            match twin_client
                .query(&QueryRequest::with_accuracy(
                    Query::range_count("adult", "hours_per_week", 10 + i, 50),
                    700.0,
                ))
                .unwrap()
            {
                QueryOutcome::Answered(a) => a.value,
                QueryOutcome::Rejected { reason } => panic!("rejected: {reason}"),
            }
        })
        .collect();
    let twin_continuation = match twin_client
        .query(&QueryRequest::with_accuracy(
            Query::range_count("adult", "hours_per_week", 20, 60),
            900.0,
        ))
        .unwrap()
    {
        QueryOutcome::Answered(a) => a.value,
        QueryOutcome::Rejected { reason } => panic!("rejected: {reason}"),
    };
    assert_eq!(answers_before, {
        twin_answers.truncate(4);
        twin_answers
    });
    assert_eq!(
        continuation, twin_continuation,
        "the recovered session must continue its noise stream bit-for-bit"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn pipelined_queries_and_control_traffic_share_one_tcp_connection() {
    let service = Arc::new(QueryService::start(
        Arc::new(build_system(9)),
        ServiceConfig::builder().workers(2).build().unwrap(),
    ));
    let frontend = Frontend::new(&service);
    let listener = frontend.listen("127.0.0.1:0").unwrap();
    let mut client = DProvClient::connect_tcp(listener.local_addr(), "pipeline").unwrap();
    client.register("analyst-2").unwrap();

    // Queue a burst of queries, interleave control requests, then poll
    // everything — out of submission order, exercising the stash.
    let ids: Vec<_> = script(2)
        .iter()
        .map(|request| client.submit(request).unwrap())
        .collect();
    client.heartbeat().unwrap();
    let budget_mid_flight = client.budget().unwrap();
    assert_eq!(budget_mid_flight.submitted, ids.len() as u64);
    for id in ids.into_iter().rev() {
        assert!(client.poll(id).unwrap().is_answered());
    }
    client.close().unwrap();
    listener.shutdown();
}
