//! Cross-crate integration tests: the full pipeline from synthetic data
//! through view selection, translation, provenance checking and synopsis
//! management, compared across mechanisms and baselines.

use dprovdb::core::analyst::{AnalystId, AnalystRegistry};
use dprovdb::core::baselines::{ChorusBaseline, ChorusPBaseline, SPrivateSqlBaseline};
use dprovdb::core::config::{AnalystConstraintSpec, SystemConfig};
use dprovdb::core::mechanism::MechanismKind;
use dprovdb::core::processor::{QueryProcessor, QueryRequest};
use dprovdb::core::system::DProvDb;
use dprovdb::engine::catalog::ViewCatalog;
use dprovdb::engine::database::Database;
use dprovdb::engine::datagen::adult::adult_database;
use dprovdb::engine::datagen::tpch::tpch_database;
use dprovdb::engine::query::Query;
use dprovdb::workloads::bfs::BfsConfig;
use dprovdb::workloads::rrq::{generate, RrqConfig};
use dprovdb::workloads::runner::ExperimentRunner;
use dprovdb::workloads::sequence::Interleaving;

fn registry() -> AnalystRegistry {
    let mut r = AnalystRegistry::new();
    r.register("external", 1).unwrap();
    r.register("internal", 4).unwrap();
    r
}

fn dprovdb(db: &Database, table: &str, epsilon: f64, mechanism: MechanismKind) -> DProvDb {
    let catalog = ViewCatalog::one_per_attribute(db, table).unwrap();
    let spec = match mechanism {
        MechanismKind::AdditiveGaussian => AnalystConstraintSpec::MaxNormalized {
            system_max_level: None,
        },
        MechanismKind::Vanilla => AnalystConstraintSpec::ProportionalSum,
    };
    DProvDb::new(
        db.clone(),
        catalog,
        registry(),
        SystemConfig::new(epsilon)
            .unwrap()
            .with_seed(11)
            .with_analyst_constraints(spec),
        mechanism,
    )
    .unwrap()
}

#[test]
fn rrq_end_to_end_ordering_matches_figure_3() {
    // The headline comparison of Fig. 3: with a moderate budget the ranking
    // by #queries answered is DProvDB >= Vanilla > Chorus, and ChorusP's
    // fairness score is at least Chorus's.
    let db = adult_database(3_000, 5);
    let workload = generate(&db, &RrqConfig::new("adult", 80, 3), 2).unwrap();
    let privileges = [1u8, 4u8];
    let runner = ExperimentRunner::new(&privileges).with_ground_truth(&db);
    let config = SystemConfig::new(1.6).unwrap().with_seed(2);

    let mut additive = dprovdb(&db, "adult", 1.6, MechanismKind::AdditiveGaussian);
    let mut vanilla = dprovdb(&db, "adult", 1.6, MechanismKind::Vanilla);
    let mut chorus = ChorusBaseline::new(db.clone(), registry(), config.clone());
    let mut chorus_p = ChorusPBaseline::new(db.clone(), registry(), config.clone()).unwrap();
    let mut private_sql = SPrivateSqlBaseline::new(
        db.clone(),
        ViewCatalog::one_per_attribute(&db, "adult").unwrap(),
        registry(),
        config,
    )
    .unwrap();

    let m_additive = runner
        .run_rrq(&mut additive, &workload, Interleaving::RoundRobin)
        .unwrap();
    let m_vanilla = runner
        .run_rrq(&mut vanilla, &workload, Interleaving::RoundRobin)
        .unwrap();
    let m_chorus = runner
        .run_rrq(&mut chorus, &workload, Interleaving::RoundRobin)
        .unwrap();
    let m_chorus_p = runner
        .run_rrq(&mut chorus_p, &workload, Interleaving::RoundRobin)
        .unwrap();
    let m_private_sql = runner
        .run_rrq(&mut private_sql, &workload, Interleaving::RoundRobin)
        .unwrap();

    assert!(m_additive.total_answered() >= m_vanilla.total_answered());
    assert!(m_additive.total_answered() > m_chorus.total_answered());
    assert!(m_chorus_p.ndcfg >= m_chorus.ndcfg);

    // Every system stays inside the overall budget under its own
    // accounting.
    for metrics in [
        &m_additive,
        &m_vanilla,
        &m_chorus,
        &m_chorus_p,
        &m_private_sql,
    ] {
        assert!(
            metrics.cumulative_epsilon <= 1.6 + 1e-6,
            "{} exceeded the budget: {}",
            metrics.system,
            metrics.cumulative_epsilon
        );
    }

    // Translation correctness across the whole run (Fig. 9a).
    assert!(m_additive.max_translation_gap() <= 1e-9);
    assert!(m_vanilla.max_translation_gap() <= 1e-9);
}

#[test]
fn randomized_interleaving_preserves_the_ordering() {
    let db = adult_database(2_000, 7);
    let workload = generate(&db, &RrqConfig::new("adult", 60, 9), 2).unwrap();
    let privileges = [1u8, 4u8];
    let runner = ExperimentRunner::new(&privileges);

    let mut additive = dprovdb(&db, "adult", 0.8, MechanismKind::AdditiveGaussian);
    let mut vanilla = dprovdb(&db, "adult", 0.8, MechanismKind::Vanilla);
    let interleaving = Interleaving::Random { seed: 17 };
    let a = runner
        .run_rrq(&mut additive, &workload, interleaving)
        .unwrap();
    let v = runner
        .run_rrq(&mut vanilla, &workload, interleaving)
        .unwrap();
    assert!(a.total_answered() >= v.total_answered());
}

#[test]
fn bfs_exploration_works_end_to_end_on_both_datasets() {
    for (db, table, attrs) in [
        (adult_database(3_000, 1), "adult", ["age", "hours_per_week"]),
        (
            tpch_database(3_000, 1),
            "lineitem",
            ["quantity", "shipdate_month"],
        ),
    ] {
        let mut system = dprovdb(&db, table, 3.2, MechanismKind::AdditiveGaussian);
        let runner = ExperimentRunner::new(&[1, 4]).with_ground_truth(&db);
        let configs: Vec<BfsConfig> = attrs
            .iter()
            .map(|a| BfsConfig::new(table, a, 200.0))
            .collect();
        let metrics = runner.run_bfs(&mut system, &db, &configs).unwrap();
        assert!(metrics.total_answered() > 0, "{table}: nothing answered");
        assert!(metrics.cumulative_epsilon <= 3.2 + 1e-9);
        // The budget trace is monotone non-decreasing.
        for w in metrics.budget_trace.windows(2) {
            assert!(w[1] >= w[0] - 1e-12);
        }
    }
}

#[test]
fn collusion_bound_additive_vs_vanilla_theorem_5_2() {
    // Both analysts ask the same queries; under the additive mechanism the
    // worst-case (collusion) loss equals the per-analyst maximum, under the
    // vanilla mechanism it is the sum.
    let db = adult_database(2_000, 3);
    let requests: Vec<QueryRequest> = (0..5)
        .map(|i| {
            QueryRequest::with_accuracy(
                Query::range_count("adult", "age", 20 + i, 40 + i),
                20_000.0,
            )
        })
        .collect();

    let mut additive = dprovdb(&db, "adult", 6.4, MechanismKind::AdditiveGaussian);
    let mut vanilla = dprovdb(&db, "adult", 6.4, MechanismKind::Vanilla);
    for system in [&mut additive, &mut vanilla] {
        for request in &requests {
            for analyst in [AnalystId(0), AnalystId(1)] {
                let _ = system.submit(analyst, request).unwrap();
            }
        }
    }

    let add_per_analyst_max = additive
        .analyst_epsilon(AnalystId(0))
        .max(additive.analyst_epsilon(AnalystId(1)));
    assert!((additive.cumulative_epsilon() - add_per_analyst_max).abs() < 1e-6);

    let van_sum = vanilla.analyst_epsilon(AnalystId(0)) + vanilla.analyst_epsilon(AnalystId(1));
    assert!((vanilla.cumulative_epsilon() - van_sum).abs() < 1e-6);
    assert!(additive.cumulative_epsilon() < vanilla.cumulative_epsilon());
}

#[test]
fn view_based_answers_agree_with_direct_execution_up_to_noise() {
    // The noisy answer must be an unbiased estimate of the exact answer:
    // check it lies within 6 standard deviations of the truth.
    let db = adult_database(5_000, 9);
    let mut system = dprovdb(&db, "adult", 6.4, MechanismKind::AdditiveGaussian);
    for (lo, hi) in [(20, 30), (35, 50), (17, 90), (60, 75)] {
        let query = Query::range_count("adult", "age", lo, hi);
        let truth = system.true_answer(&query).unwrap();
        let request = QueryRequest::with_accuracy(query, 10_000.0);
        let outcome = system.submit(AnalystId(1), &request).unwrap();
        let answer = outcome.answered().expect("answered");
        let std_dev = answer.noise_variance.sqrt();
        assert!(
            (answer.value - truth).abs() <= 6.0 * std_dev,
            "answer {} too far from truth {truth} (sd {std_dev})",
            answer.value
        );
    }
}

#[test]
fn sql_front_end_round_trips_through_the_system() {
    let db = adult_database(2_000, 13);
    let mut system = dprovdb(&db, "adult", 6.4, MechanismKind::AdditiveGaussian);
    let query =
        dprovdb::engine::sql::parse("SELECT COUNT(*) FROM adult WHERE age BETWEEN 30 AND 39")
            .unwrap();
    let truth = system.true_answer(&query).unwrap();
    let outcome = system
        .submit(AnalystId(1), &QueryRequest::with_accuracy(query, 5_000.0))
        .unwrap();
    let answer = outcome.answered().expect("answered");
    assert!((answer.value - truth).abs() < 6.0 * answer.noise_variance.sqrt() + 1.0);
}

#[test]
fn adding_a_view_at_runtime_is_supported_by_water_filling() {
    // §5.3.2: under water-filling the administrator can register new views
    // over time; the provenance table grows a column and queries over the
    // new view are answerable.
    let db = adult_database(2_000, 21);
    let mut catalog = ViewCatalog::one_per_attribute(&db, "adult").unwrap();
    // Start without the two-way view; queries over (age, sex) are rejected.
    let config = SystemConfig::new(3.2).unwrap().with_seed(4);
    let mut system = DProvDb::new(
        db.clone(),
        catalog.clone(),
        registry(),
        config.clone(),
        MechanismKind::AdditiveGaussian,
    )
    .unwrap();
    let query = Query::count("adult")
        .filter(dprovdb::engine::expr::Predicate::range("age", 20, 40))
        .filter(dprovdb::engine::expr::Predicate::equals("sex", "Female"));
    let outcome = system
        .submit(
            AnalystId(1),
            &QueryRequest::with_accuracy(query.clone(), 50_000.0),
        )
        .unwrap();
    assert!(!outcome.is_answered());

    // Rebuild with the extra view (the catalog is fixed per system in this
    // implementation; adding a view means adding a provenance column).
    catalog.add_view(dprovdb::engine::view::ViewDef::histogram(
        "adult.age_sex",
        "adult",
        &["age", "sex"],
    ));
    let mut system = DProvDb::new(
        db,
        catalog,
        registry(),
        config,
        MechanismKind::AdditiveGaussian,
    )
    .unwrap();
    let outcome = system
        .submit(AnalystId(1), &QueryRequest::with_accuracy(query, 50_000.0))
        .unwrap();
    assert!(outcome.is_answered());
    assert_eq!(system.provenance().num_views(), 14);
}
