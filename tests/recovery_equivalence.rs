//! Recovery-equivalence determinism: a fixed-seed workload run straight
//! through must be **bit-identical** to the same workload run halfway,
//! dropped, recovered from the durable store, and finished — same
//! answers, same per-analyst ledgers, same tight-accounting totals.
//!
//! This is the strongest statement of crash-safety the storage layer can
//! make: recovery is not merely "safe" (never undercounting spend — the
//! crash-injection suite covers that), it is *exact* — the restarted
//! service continues as if the restart never happened, including each
//! session's deterministic noise stream.

use dprov_core::analyst::{AnalystId, AnalystRegistry};
use dprov_core::config::SystemConfig;
use dprov_core::mechanism::MechanismKind;
use dprov_core::processor::QueryRequest;
use dprov_core::system::DProvDb;
use dprov_engine::catalog::ViewCatalog;
use dprov_engine::datagen::adult::adult_database;
use dprov_engine::query::Query;
use dprov_server::{DurabilityConfig, QueryService, ServiceConfig, SessionId};

const QUERIES: usize = 24;
const SEED: u64 = 21;

fn build_system(mechanism: MechanismKind) -> DProvDb {
    let db = adult_database(800, 1);
    let catalog = ViewCatalog::one_per_attribute(&db, "adult").unwrap();
    let mut registry = AnalystRegistry::new();
    registry.register("external", 2).unwrap();
    registry.register("internal", 4).unwrap();
    let config = SystemConfig::new(10.0).unwrap().with_seed(SEED);
    DProvDb::new(db, catalog, registry, config, mechanism).unwrap()
}

fn service_config() -> ServiceConfig {
    // One worker: single-session workloads are then fully deterministic.
    ServiceConfig::builder().workers(1).build().unwrap()
}

fn durability(dir: &std::path::Path) -> DurabilityConfig {
    DurabilityConfig::builder(dir)
        .fsync(false)
        .snapshot_every(0)
        .build()
        .unwrap()
}

fn workload() -> Vec<(usize, QueryRequest)> {
    // Two sessions (one per analyst) interleave accuracy- and
    // privacy-oriented requests over two views.
    (0..QUERIES)
        .map(|i| {
            let session = i % 2;
            let attr = if (i / 2) % 2 == 0 {
                "age"
            } else {
                "hours_per_week"
            };
            let query = Query::range_count("adult", attr, 20 + (i % 5) as i64, 55);
            let request = if i % 3 == 0 {
                QueryRequest::with_privacy(query, 0.05 + 0.01 * (i as f64))
            } else {
                QueryRequest::with_accuracy(query, 2_500.0 - 60.0 * i as f64)
            };
            (session, request)
        })
        .collect()
}

#[derive(Debug, PartialEq)]
struct RunTrace {
    /// `(answered, value, epsilon_charged)` per query, in order.
    answers: Vec<(bool, f64, f64)>,
    ledger: Vec<(AnalystId, f64)>,
    tight_epsilon: f64,
    row_totals: Vec<f64>,
}

fn trace_of(service: &QueryService, answers: Vec<(bool, f64, f64)>) -> RunTrace {
    let ledger = service.system().ledger();
    RunTrace {
        answers,
        ledger: ledger
            .all()
            .into_iter()
            .map(|(a, b)| (a, b.epsilon.value()))
            .collect(),
        tight_epsilon: service.system().tight_accounting().epsilon.value(),
        row_totals: (0..2)
            .map(|a| service.system().provenance().row_total(AnalystId(a)))
            .collect(),
    }
}

fn submit_slice(
    service: &QueryService,
    sessions: &[SessionId],
    slice: &[(usize, QueryRequest)],
) -> Vec<(bool, f64, f64)> {
    slice
        .iter()
        .map(|(session, request)| {
            let outcome = service
                .submit_wait(sessions[*session], request.clone())
                .expect("submission must not hard-fail");
            match outcome.answered() {
                Some(a) => (true, a.value, a.epsilon_charged),
                None => (false, 0.0, 0.0),
            }
        })
        .collect()
}

fn run_equivalence(mechanism: MechanismKind) {
    let workload = workload();

    // Reference: one uninterrupted run.
    let baseline = {
        let service = QueryService::start(
            std::sync::Arc::new(build_system(mechanism)),
            service_config(),
        );
        let sessions = [
            service.open_session(AnalystId(0)).unwrap(),
            service.open_session(AnalystId(1)).unwrap(),
        ];
        let answers = submit_slice(&service, &sessions, &workload);
        trace_of(&service, answers)
    };

    // Interrupted run: first half durable, checkpoint, drop the service
    // and the system, recover into a brand-new process image, second half.
    let dir = dprov_storage::scratch_dir("recovery-equivalence");
    let half = QUERIES / 2;
    let (first_half_answers, sessions) = {
        let (service, report) = QueryService::start_durable(
            build_system(mechanism),
            service_config(),
            durability(&dir),
        )
        .unwrap();
        assert_eq!(report.replayed_commits, 0);
        let sessions = [
            service.open_session(AnalystId(0)).unwrap(),
            service.open_session(AnalystId(1)).unwrap(),
        ];
        let answers = submit_slice(&service, &sessions, &workload[..half]);
        service.checkpoint().unwrap();
        (answers, sessions)
        // Dropped without shutdown: the mid-run restart.
    };

    let interrupted = {
        let (service, report) = QueryService::start_durable(
            build_system(mechanism),
            service_config(),
            durability(&dir),
        )
        .unwrap();
        assert!(report.snapshot_restored, "checkpoint must be picked up");
        assert_eq!(report.restored_sessions, 2);
        let mut answers = first_half_answers;
        answers.extend(submit_slice(&service, &sessions, &workload[half..]));
        trace_of(&service, answers)
    };

    // Bit-identical: assert_eq on raw f64s, no tolerance.
    assert_eq!(
        baseline, interrupted,
        "{mechanism}: a mid-run restart must be invisible"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn mid_run_restart_is_bit_identical_additive() {
    run_equivalence(MechanismKind::AdditiveGaussian);
}

#[test]
fn mid_run_restart_is_bit_identical_vanilla() {
    run_equivalence(MechanismKind::Vanilla);
}
