//! Delta-history retention: capping the sealed-epoch history a snapshot
//! carries (`DurabilityConfig::delta_retention` /
//! `DProvDb::compact_delta_history`) must be **invisible** to every
//! analyst- and recovery-visible bit.
//!
//! The contract under test, from two directions:
//!
//! * **Compaction is inert in memory** — merging old epochs into one
//!   baseline epoch changes no answer, charge, seal report or audit
//!   count, because the baseline replays the same encoded rows in the
//!   same order.
//! * **WAL-only and snapshot recovery agree** — a service recovered by
//!   replaying the raw write-ahead ledger (which still carries every
//!   individual epoch) and a service recovered from a retention-capped
//!   snapshot (which carries the merged baseline) continue a workload
//!   bit-identically.

use dprov_core::analyst::{AnalystId, AnalystRegistry};
use dprov_core::config::SystemConfig;
use dprov_core::mechanism::MechanismKind;
use dprov_core::system::DProvDb;
use dprov_engine::catalog::ViewCatalog;
use dprov_engine::datagen::adult::adult_database;
use dprov_engine::query::Query;
use dprov_server::{DurabilityConfig, QueryService, ServiceConfig, SessionId};
use dprov_workloads::skew::{generate_stream, StreamEvent, StreamingConfig};

const SEED: u64 = 47;
const ANALYSTS: usize = 2;
const RETAIN: u64 = 2;

fn build_system(mechanism: MechanismKind) -> DProvDb {
    let db = adult_database(600, 1);
    let catalog = ViewCatalog::one_per_attribute(&db, "adult").unwrap();
    let mut registry = AnalystRegistry::new();
    registry.register("external", 2).unwrap();
    registry.register("internal", 4).unwrap();
    let config = SystemConfig::new(10.0).unwrap().with_seed(SEED);
    DProvDb::new(db, catalog, registry, config, mechanism).unwrap()
}

fn service_config() -> ServiceConfig {
    ServiceConfig::builder()
        .workers(1)
        .updaters(&["loader"])
        .build()
        .unwrap()
}

fn durability(dir: &std::path::Path, retention: u64) -> DurabilityConfig {
    DurabilityConfig::builder(dir)
        .fsync(false)
        .snapshot_every(0)
        .delta_retention(retention)
        .build()
        .unwrap()
}

fn stream() -> Vec<StreamEvent> {
    let db = adult_database(600, 1);
    let mut config = StreamingConfig::update_heavy("adult", ANALYSTS, 18).with_seed(SEED);
    config.base.accuracy_range = (2_000.0, 20_000.0);
    generate_stream(&db, &config).unwrap()
}

/// Everything compared, floats as raw bits so equality is exact.
#[derive(Debug, PartialEq)]
struct RunTrace {
    answers: Vec<(bool, u64, u64, u64)>,
    seals: Vec<(u64, usize, usize)>,
    row_totals: Vec<u64>,
    final_epoch: u64,
    audits: Vec<u64>,
}

fn drive(
    service: &QueryService,
    sessions: &[SessionId],
    events: &[StreamEvent],
    answers: &mut Vec<(bool, u64, u64, u64)>,
    seals: &mut Vec<(u64, usize, usize)>,
) {
    for event in events {
        match event {
            StreamEvent::Query { analyst, request } => {
                let outcome = service
                    .submit_wait(sessions[*analyst], request.clone())
                    .expect("submission must not hard-fail");
                answers.push(match outcome.answered() {
                    Some(a) => (
                        true,
                        a.value.to_bits(),
                        a.epsilon_charged.to_bits(),
                        a.epoch,
                    ),
                    None => (false, 0, 0, 0),
                });
            }
            StreamEvent::Update(batch) => {
                service.apply_update(batch).expect("valid batch");
            }
            StreamEvent::Seal => {
                let report = service.seal_epoch().expect("seal");
                seals.push((report.epoch, report.rows, report.views_patched.len()));
            }
        }
    }
}

fn trace_of(
    service: &QueryService,
    answers: Vec<(bool, u64, u64, u64)>,
    seals: Vec<(u64, usize, usize)>,
) -> RunTrace {
    let system = service.system();
    let audits: Vec<u64> = [
        Query::count("adult"),
        Query::range_count("adult", "age", 25, 45),
        Query::sum("adult", "hours_per_week"),
    ]
    .iter()
    .map(|q| system.true_answer(q).unwrap().to_bits())
    .collect();
    RunTrace {
        answers,
        seals,
        row_totals: (0..ANALYSTS)
            .map(|a| system.provenance().row_total(AnalystId(a)).to_bits())
            .collect(),
        final_epoch: system.current_epoch(),
        audits,
    }
}

fn open_sessions(service: &QueryService) -> Vec<SessionId> {
    (0..ANALYSTS)
        .map(|a| service.open_session(AnalystId(a)).unwrap())
        .collect()
}

/// The event index right after the `(RETAIN + 2)`th seal — late enough
/// that the sealed history exceeds the retention, so both the mid-run
/// compaction and the retention-capped snapshot genuinely merge epochs.
fn split_point(events: &[StreamEvent]) -> usize {
    let mut sealed = 0u64;
    for (i, event) in events.iter().enumerate() {
        if matches!(event, StreamEvent::Seal) {
            sealed += 1;
            if sealed == RETAIN + 2 {
                return i + 1;
            }
        }
    }
    panic!("the stream seals too few epochs for retention {RETAIN}");
}

/// One uninterrupted volatile run; `compact_mid_run` exercises the
/// in-memory compaction halfway through.
fn uninterrupted(mechanism: MechanismKind, compact_mid_run: bool) -> RunTrace {
    let events = stream();
    let service = QueryService::start(
        std::sync::Arc::new(build_system(mechanism)),
        service_config(),
    );
    let sessions = open_sessions(&service);
    let (mut answers, mut seals) = (Vec::new(), Vec::new());
    let mid = split_point(&events);
    drive(
        &service,
        &sessions,
        &events[..mid],
        &mut answers,
        &mut seals,
    );
    if compact_mid_run {
        let merged = service.system().compact_delta_history(RETAIN);
        assert!(
            merged > 0,
            "the workload must seal enough epochs for retention {RETAIN} to merge some"
        );
        // Idempotent: nothing left below the watermark.
        assert_eq!(service.system().compact_delta_history(RETAIN), 0);
    }
    drive(
        &service,
        &sessions,
        &events[mid..],
        &mut answers,
        &mut seals,
    );
    trace_of(&service, answers, seals)
}

/// A durable run that crashes halfway and recovers. With
/// `snapshot_before_crash` the first half ends in a checkpoint (snapshot
/// recovery, retention-capped); without it recovery replays the raw WAL
/// (every individual epoch).
fn recovered(mechanism: MechanismKind, retention: u64, snapshot_before_crash: bool) -> RunTrace {
    let events = stream();
    let dir = dprov_storage::scratch_dir(&format!(
        "delta-retention-{mechanism}-{retention}-{snapshot_before_crash}"
    ));
    let mid = split_point(&events);
    let (mut answers, mut seals, sessions) = {
        let (service, _) = QueryService::start_durable(
            build_system(mechanism),
            service_config(),
            durability(&dir, retention),
        )
        .unwrap();
        let sessions = open_sessions(&service);
        let (mut answers, mut seals) = (Vec::new(), Vec::new());
        drive(
            &service,
            &sessions,
            &events[..mid],
            &mut answers,
            &mut seals,
        );
        if snapshot_before_crash {
            service.checkpoint().unwrap();
        }
        (answers, seals, sessions)
        // Dropped WITHOUT shutdown: the crash.
    };
    let trace = {
        let (service, report) = QueryService::start_durable(
            build_system(mechanism),
            service_config(),
            durability(&dir, retention),
        )
        .unwrap();
        assert_eq!(
            report.snapshot_restored, snapshot_before_crash,
            "recovery mode must match the scenario"
        );
        drive(
            &service,
            &sessions,
            &events[mid..],
            &mut answers,
            &mut seals,
        );
        trace_of(&service, answers, seals)
    };
    std::fs::remove_dir_all(&dir).ok();
    trace
}

fn run_matrix(mechanism: MechanismKind) {
    let events = stream();
    assert!(
        events
            .iter()
            .filter(|e| matches!(e, StreamEvent::Seal))
            .count() as u64
            > RETAIN + 1,
        "the stream must seal more epochs than the retention keeps"
    );

    let baseline = uninterrupted(mechanism, false);
    assert!(baseline.final_epoch > RETAIN);
    assert!(baseline.answers.iter().any(|a| a.0), "answers expected");

    // In-memory compaction changes no visible bit.
    let compacted = uninterrupted(mechanism, true);
    assert_eq!(
        baseline, compacted,
        "{mechanism}: compacting the delta history must be invisible"
    );

    // WAL-only recovery (full epoch history in the ledger) and snapshot
    // recovery (retention-capped baseline epoch) agree with the baseline —
    // and therefore with each other.
    let wal_only = recovered(mechanism, RETAIN, false);
    assert_eq!(
        baseline, wal_only,
        "{mechanism}: WAL-only recovery must continue bit-identically"
    );
    let snapshot = recovered(mechanism, RETAIN, true);
    assert_eq!(
        baseline, snapshot,
        "{mechanism}: retention-capped snapshot recovery must continue bit-identically"
    );
}

#[test]
fn delta_retention_matrix_vanilla() {
    run_matrix(MechanismKind::Vanilla);
}

#[test]
fn delta_retention_matrix_additive() {
    run_matrix(MechanismKind::AdditiveGaussian);
}
