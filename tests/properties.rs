//! Property-based tests (proptest) over the core DP invariants.

use proptest::prelude::*;

use dprovdb::core::synopsis_manager::SynopsisManager;
use dprovdb::engine::datagen::adult::adult_database;
use dprovdb::engine::synopsis::Synopsis;
use dprovdb::engine::view::ViewDef;

use dprovdb::dp::budget::{Budget, Delta, Epsilon};
use dprovdb::dp::mechanism::{
    additive_gaussian_release, analytic_gaussian_delta, analytic_gaussian_sigma,
};
use dprovdb::dp::rng::DpRng;
use dprovdb::dp::sensitivity::Sensitivity;
use dprovdb::dp::translation::{translate_variance_to_epsilon, FrictionAwareTranslation};
use dprovdb::engine::schema::{Attribute, AttributeType, Schema};
use dprovdb::engine::table::Table;
use dprovdb::engine::value::Value;
use dprovdb::engine::view::{flat_index, MultiIndexIter};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The analytic-Gaussian calibration is tight: the calibrated sigma
    /// satisfies the privacy profile, and a 1% smaller sigma violates it.
    #[test]
    fn analytic_calibration_is_tight(
        eps in 0.05f64..8.0,
        delta_exp in 5i32..13,
        sens in 0.5f64..4.0,
    ) {
        let delta = 10f64.powi(-delta_exp);
        let sigma = analytic_gaussian_sigma(eps, delta, sens).unwrap();
        prop_assert!(analytic_gaussian_delta(sigma, sens, eps) <= delta * (1.0 + 1e-6));
        prop_assert!(analytic_gaussian_delta(sigma * 0.99, sens, eps) > delta);
    }

    /// Calibrated sigma is monotone: more budget (larger eps or delta) never
    /// needs more noise.
    #[test]
    fn calibration_is_monotone_in_epsilon(
        eps in 0.05f64..4.0,
        bump in 0.01f64..2.0,
    ) {
        let s1 = analytic_gaussian_sigma(eps, 1e-9, 1.0).unwrap();
        let s2 = analytic_gaussian_sigma(eps + bump, 1e-9, 1.0).unwrap();
        prop_assert!(s2 <= s1 + 1e-9);
    }

    /// Accuracy→privacy translation always delivers at least the requested
    /// accuracy, and the result is monotone in the target.
    #[test]
    fn translation_meets_accuracy_and_is_monotone(
        target in 0.5f64..1e6,
        factor in 1.1f64..10.0,
    ) {
        let delta = Delta::new(1e-9).unwrap();
        let max_eps = Epsilon::new(50.0).unwrap();
        let tight = translate_variance_to_epsilon(
            target, delta, Sensitivity::histogram_bounded(), max_eps, 1e-5,
        ).unwrap();
        prop_assert!(tight.achieved_variance <= target * (1.0 + 1e-9));

        let loose = translate_variance_to_epsilon(
            target * factor, delta, Sensitivity::histogram_bounded(), max_eps, 1e-5,
        ).unwrap();
        prop_assert!(loose.epsilon.value() <= tight.epsilon.value() + 1e-5);
    }

    /// The friction-aware translation never asks for more budget than the
    /// vanilla translation, and its combination always meets the requested
    /// accuracy (Eq. 3).
    #[test]
    fn friction_aware_translation_is_never_worse(
        target in 1.0f64..10_000.0,
        existing_factor in 1.05f64..20.0,
    ) {
        let delta = Delta::new(1e-9).unwrap();
        let max_eps = Epsilon::new(50.0).unwrap();
        let existing = target * existing_factor;
        let translator = FrictionAwareTranslation::new(delta, Sensitivity::histogram_bounded());
        let friction = translator.translate(target, Some(existing), max_eps).unwrap();
        let vanilla = translator.translate(target, None, max_eps).unwrap();
        prop_assert!(friction.epsilon.value() <= vanilla.epsilon.value() + 1e-6);
        let w = friction.combination_weight;
        let combined = w * w * existing + (1.0 - w) * (1.0 - w) * friction.achieved_variance;
        prop_assert!(combined <= target * (1.0 + 1e-6));
    }

    /// The additive Gaussian release charges each recipient its own budget
    /// and noisier answers go to smaller budgets (Algorithm 3 ordering).
    #[test]
    fn additive_release_orders_noise_by_budget(
        eps in proptest::collection::vec(0.05f64..3.0, 2..6),
        seed in 0u64..1_000,
    ) {
        let budgets: Vec<Budget> = eps.iter().map(|&e| Budget::new(e, 1e-9).unwrap()).collect();
        let mut rng = DpRng::seed_from_u64(seed);
        let truth = vec![500.0; 32];
        let releases =
            additive_gaussian_release(&truth, Sensitivity::COUNT, &budgets, &mut rng).unwrap();
        prop_assert_eq!(releases.len(), budgets.len());
        for (i, r) in releases.iter().enumerate() {
            prop_assert_eq!(r.recipient, i);
            let expected =
                analytic_gaussian_sigma(eps[i], 1e-9, 1.0).unwrap();
            prop_assert!((r.sigma - expected).abs() < 1e-9);
        }
        // Pairwise: a strictly larger epsilon never gets a larger sigma.
        for i in 0..releases.len() {
            for j in 0..releases.len() {
                if eps[i] > eps[j] {
                    prop_assert!(releases[i].sigma <= releases[j].sigma + 1e-12);
                }
            }
        }
    }

    /// Budget composition is commutative and monotone.
    #[test]
    fn budget_composition_properties(
        e1 in 0.0f64..5.0, e2 in 0.0f64..5.0,
        d1 in 0.0f64..1e-6, d2 in 0.0f64..1e-6,
    ) {
        let a = Budget::new(e1, d1).unwrap();
        let b = Budget::new(e2, d2).unwrap();
        prop_assert_eq!(a.compose(b), b.compose(a));
        prop_assert!(a.compose(b).covers(a));
        prop_assert!(a.compose(b).covers(b));
        prop_assert!(a.compose(b).covers(a.pointwise_max(b)));
    }

    /// Flat indexing is a bijection between multi-indices and 0..N.
    #[test]
    fn flat_index_is_a_bijection(dims in proptest::collection::vec(1usize..6, 1..4)) {
        let total: usize = dims.iter().product();
        let mut seen = vec![false; total];
        for cell in MultiIndexIter::new(&dims) {
            let idx = flat_index(&dims, &cell);
            prop_assert!(idx < total);
            prop_assert!(!seen[idx], "duplicate flat index {}", idx);
            seen[idx] = true;
        }
        prop_assert!(seen.into_iter().all(|s| s));
    }

    /// The inverse-variance (UMVUE, Eq. 2) combination of two unbiased
    /// synopses is at least as accurate as either input: with the optimal
    /// weight the merged per-bin variance equals the harmonic combination
    /// `(1/v_a + 1/v_b)^{-1}`, which is ≤ min(v_a, v_b).
    #[test]
    fn umvue_combination_beats_both_inputs(
        v_a in 1.0f64..1e6,
        v_b in 1.0f64..1e6,
    ) {
        let counts = vec![100.0; 16];
        let a = Synopsis::new("v", counts.clone(), v_a);
        let b = Synopsis::new("v", counts, v_b);
        let w = a.optimal_combination_weight(v_b);
        prop_assert!((0.0..=1.0).contains(&w));
        let merged = a.combine(&b, w);
        let harmonic = 1.0 / (1.0 / v_a + 1.0 / v_b);
        prop_assert!((merged.per_bin_variance - harmonic).abs() <= harmonic * 1e-9);
        prop_assert!(merged.per_bin_variance <= v_a.min(v_b) * (1.0 + 1e-9));
    }

    /// Table insertion round-trips every in-domain value.
    #[test]
    fn table_insert_round_trips(values in proptest::collection::vec(17i64..=90, 1..50)) {
        let schema = Schema::new(vec![Attribute::new("age", AttributeType::integer(17, 90))]);
        let mut table = Table::new("t", schema);
        for &v in &values {
            table.insert_row(&[Value::Int(v)]).unwrap();
        }
        prop_assert_eq!(table.num_rows(), values.len());
        for (row, &v) in values.iter().enumerate() {
            prop_assert_eq!(table.value_at(row, "age").unwrap(), Value::Int(v));
        }
    }
}

proptest! {
    // Each case materialises a small database, so keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The SynopsisManager's global-synopsis growth (`ensure_global`) obeys
    /// the UMVUE-merge invariants across an arbitrary growth schedule:
    /// the nominal epsilon is monotone non-decreasing, and every merge
    /// leaves the per-bin variance no larger than the *minimum* of its two
    /// inputs (the previous global synopsis and the fresh delta synopsis).
    #[test]
    fn ensure_global_merge_is_monotone_and_umvue_accurate(
        eps_first in 0.1f64..1.5,
        growths in proptest::collection::vec(0.05f64..0.8, 1..5),
        seed in 0u64..1_000,
    ) {
        use dprovdb::dp::budget::Delta;
        use dprovdb::dp::mechanism::analytic_gaussian_sigma;
        use dprovdb::dp::rng::DpRng;

        let db = adult_database(300, 1);
        let mut mgr = SynopsisManager::new(Delta::new(1e-9).unwrap());
        mgr.register_view(&db, &ViewDef::histogram("adult.age", "adult", &["age"]))
            .unwrap();
        let mut rng = DpRng::seed_from_u64(seed);
        let sens = mgr.sensitivity("adult.age").unwrap().value();

        mgr.ensure_global("adult.age", eps_first, &mut rng).unwrap();
        let (mut prev_eps, mut prev_var) =
            mgr.global_state("adult.age").unwrap().unwrap();
        prop_assert_eq!(prev_eps, eps_first);

        for growth in growths {
            let target = prev_eps + growth;
            let spent = mgr.ensure_global("adult.age", target, &mut rng).unwrap();
            prop_assert!((spent - growth).abs() < 1e-9);
            let (eps, var) = mgr.global_state("adult.age").unwrap().unwrap();
            // Epsilon is monotone non-decreasing (exactly the target here).
            prop_assert!(eps >= prev_eps);
            prop_assert!((eps - target).abs() < 1e-12);
            // The merge is a strict accuracy improvement over the previous
            // global synopsis ...
            prop_assert!(var <= prev_var * (1.0 + 1e-9));
            // ... and no worse than the fresh delta synopsis it merged in.
            let sigma_delta = analytic_gaussian_sigma(growth, 1e-9, sens).unwrap();
            let fresh_var = sigma_delta * sigma_delta;
            prop_assert!(var <= fresh_var.min(prev_var) * (1.0 + 1e-9));
            prev_eps = eps;
            prev_var = var;
        }

        // Shrinking the target is free and changes nothing.
        let spent = mgr.ensure_global("adult.age", prev_eps * 0.5, &mut rng).unwrap();
        prop_assert_eq!(spent, 0.0);
        let (eps, var) = mgr.global_state("adult.age").unwrap().unwrap();
        prop_assert_eq!(eps, prev_eps);
        prop_assert_eq!(var, prev_var);
    }
}
