//! Batched execution is bit-identical to the sequential per-query path.
//!
//! The service's per-view micro-batching (`ServiceConfig::max_batch` /
//! `max_linger`) changes *when* work is drained from the queue and in what
//! cross-session order it runs — never *what* any analyst receives. This
//! suite drives identical multi-analyst workloads through a sequential
//! service (`max_batch = 1`) and through aggressively batched ones, and
//! asserts the full per-session outcome streams — answer values, epsilon
//! charges, noise variances, cache flags — plus the final budget state are
//! bit-identical, for **both** mechanisms.
//!
//! Scope mirrors the service's documented determinism guarantee (see the
//! `dprov-server` crate docs): an uncontended budget, and
//!
//! * **vanilla** — any workload, including many sessions hammering one
//!   *shared* view: every vanilla release draws only from its own
//!   session's stream, so no cross-session execution order is observable;
//! * **additive Gaussian** — sessions working disjoint views: each view's
//!   hidden global synopsis is then grown by exactly one session's FIFO
//!   stream. (A view shared by racing additive sessions grows in
//!   cross-session arrival order, which no scheduling — batched or not —
//!   pins down; that caveat predates batching.)
//!
//! Sessions pipeline their whole script up front, so the comparison also
//! covers the lane-chaining path (batch=1 drains a session depth-first,
//! batched drains breadth-first — outputs must not care).

use std::sync::Arc;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dprovdb::core::analyst::{AnalystId, AnalystRegistry};
use dprovdb::core::config::SystemConfig;
use dprovdb::core::mechanism::MechanismKind;
use dprovdb::core::processor::{QueryOutcome, QueryProcessor, QueryRequest};
use dprovdb::core::system::DProvDb;
use dprovdb::engine::catalog::ViewCatalog;
use dprovdb::engine::datagen::adult::adult_database;
use dprovdb::engine::expr::Predicate;
use dprovdb::engine::query::Query;
use dprovdb::server::{QueryService, ServiceConfig};

const ANALYSTS: usize = 6;

/// The adult table's integer attributes with their domains (for in-domain
/// range queries).
const INT_ATTRS: [(&str, i64, i64); 5] = [
    ("age", 17, 90),
    ("education_num", 1, 16),
    ("capital_gain", 0, 99_999),
    ("capital_loss", 0, 4_499),
    ("hours_per_week", 1, 99),
];

fn build_system(mechanism: MechanismKind, seed: u64) -> Arc<DProvDb> {
    let db = adult_database(1_200, 1);
    let catalog = ViewCatalog::one_per_attribute(&db, "adult").unwrap();
    let mut registry = AnalystRegistry::new();
    for i in 0..ANALYSTS {
        registry
            .register(&format!("analyst-{i}"), ((i % 4) + 1) as u8)
            .unwrap();
    }
    // A roomy budget keeps every accept/reject decision independent of
    // cross-analyst totals (the documented determinism condition).
    let config = SystemConfig::new(100.0).unwrap().with_seed(seed);
    Arc::new(DProvDb::new(db, catalog, registry, config, mechanism).unwrap())
}

/// One comparable outcome: every analyst-visible field, bit-exact.
#[derive(Debug, Clone, PartialEq)]
enum Observed {
    Answered {
        value: u64,
        epsilon: u64,
        variance: u64,
        from_cache: bool,
        view: Option<String>,
    },
    Rejected(String),
}

fn observe(outcome: QueryOutcome) -> Observed {
    match outcome {
        QueryOutcome::Answered(a) => Observed::Answered {
            value: a.value.to_bits(),
            epsilon: a.epsilon_charged.to_bits(),
            variance: a.noise_variance.to_bits(),
            from_cache: a.from_cache,
            view: a.view,
        },
        QueryOutcome::Rejected { reason } => Observed::Rejected(reason.to_string()),
    }
}

/// Runs a per-analyst script (fully pipelined) through a single-worker
/// service with the given batch knobs and returns each session's ordered
/// outcome stream plus the final budget state.
fn run(
    mechanism: MechanismKind,
    seed: u64,
    script: &[Vec<QueryRequest>],
    max_batch: usize,
    linger_ms: u64,
) -> (Vec<Vec<Observed>>, Vec<u64>, u64) {
    let system = build_system(mechanism, seed);
    let service = QueryService::start(
        Arc::clone(&system),
        ServiceConfig::builder()
            .workers(1)
            .max_batch(max_batch)
            .max_linger(std::time::Duration::from_millis(linger_ms))
            .build()
            .unwrap(),
    );
    let sessions: Vec<_> = (0..ANALYSTS)
        .map(|a| service.open_session(AnalystId(a)).unwrap())
        .collect();

    // Pipeline everything up front, interleaving analysts round-robin so
    // micro-batches have cross-session work to regroup.
    let waves = script.iter().map(Vec::len).max().unwrap_or(0);
    let mut pending: Vec<Vec<_>> = (0..ANALYSTS).map(|_| Vec::new()).collect();
    for wave in 0..waves {
        for a in 0..ANALYSTS {
            if let Some(request) = script[a].get(wave) {
                pending[a].push(
                    service
                        .submit_pipelined(sessions[a], request.clone())
                        .unwrap(),
                );
            }
        }
    }
    let outcomes: Vec<Vec<Observed>> = pending
        .into_iter()
        .map(|per_session| {
            per_session
                .into_iter()
                .map(|p| observe(p.wait().unwrap()))
                .collect()
        })
        .collect();

    let provenance = system.provenance();
    let row_totals: Vec<u64> = (0..ANALYSTS)
        .map(|a| provenance.row_total(AnalystId(a)).to_bits())
        .collect();
    let cumulative = system.cumulative_epsilon().to_bits();
    service.shutdown();
    (outcomes, row_totals, cumulative)
}

/// Vanilla workload: three analysts share the "age" view, the rest work
/// their own attributes — vanilla releases draw only from their own
/// session streams, so even the shared view must compare bit-for-bit.
fn shared_view_script() -> Vec<Vec<QueryRequest>> {
    (0..ANALYSTS)
        .map(|a| {
            (0..10)
                .map(|wave| {
                    let i = wave as i64;
                    let query = if a < 3 {
                        Query::range_count("adult", "age", 20 + i + a as i64, 45 + i)
                    } else {
                        let (attr, min, max) = INT_ATTRS[1 + a % 4];
                        Query::range_count("adult", attr, min, min + (max - min) * (1 + i) / 12)
                    };
                    QueryRequest::with_accuracy(query, 350.0 + 125.0 * wave as f64 + a as f64)
                })
                .collect()
        })
        .collect()
}

/// Additive workload: disjoint views — five analysts each own one integer
/// attribute, the sixth works the categorical "sex" view via equality
/// counts.
fn disjoint_view_script() -> Vec<Vec<QueryRequest>> {
    (0..ANALYSTS)
        .map(|a| {
            (0..10)
                .map(|wave| {
                    let i = wave as i64;
                    let query = if a < INT_ATTRS.len() {
                        let (attr, min, max) = INT_ATTRS[a];
                        let span = max - min;
                        Query::range_count(
                            "adult",
                            attr,
                            min + span * i / 40,
                            min + span * (10 + i) / 40,
                        )
                    } else {
                        Query::count("adult").filter(Predicate::equals(
                            "sex",
                            if wave % 2 == 0 { "Female" } else { "Male" },
                        ))
                    };
                    // Tightening accuracy forces periodic re-releases
                    // instead of pure cache hits.
                    QueryRequest::with_accuracy(query, 2_000.0 / (1.0 + wave as f64))
                })
                .collect()
        })
        .collect()
}

fn script_for(mechanism: MechanismKind) -> Vec<Vec<QueryRequest>> {
    match mechanism {
        MechanismKind::Vanilla => shared_view_script(),
        MechanismKind::AdditiveGaussian => disjoint_view_script(),
    }
}

#[test]
fn batched_service_is_bit_identical_to_sequential_for_both_mechanisms() {
    for mechanism in [MechanismKind::Vanilla, MechanismKind::AdditiveGaussian] {
        let script = script_for(mechanism);
        let sequential = run(mechanism, 17, &script, 1, 0);
        assert!(
            sequential.0.iter().flatten().any(|o| matches!(
                o,
                Observed::Answered {
                    from_cache: false,
                    ..
                }
            )),
            "{mechanism}: the script must exercise real releases"
        );
        for (max_batch, linger_ms) in [(4, 0), (16, 2), (64, 0)] {
            let batched = run(mechanism, 17, &script, max_batch, linger_ms);
            assert_eq!(
                sequential, batched,
                "{mechanism}: batched run (batch={max_batch}, linger={linger_ms}ms) diverged \
                 from the sequential per-query path"
            );
        }
    }
}

#[test]
fn repeated_queries_still_hit_the_cache_under_batching() {
    // Every analyst repeats one identical query: the first submission pays,
    // every later one must come from the cached synopsis with zero charge,
    // exactly as sequentially — whatever the batch shape.
    let script: Vec<Vec<QueryRequest>> = (0..ANALYSTS)
        .map(|_| {
            (0..4)
                .map(|_| {
                    QueryRequest::with_accuracy(Query::range_count("adult", "age", 25, 50), 2_000.0)
                })
                .collect()
        })
        .collect();
    for mechanism in [MechanismKind::Vanilla, MechanismKind::AdditiveGaussian] {
        let (outcomes, _, _) = run(mechanism, 29, &script, 16, 1);
        for per_session in &outcomes {
            for (i, observed) in per_session.iter().enumerate() {
                match observed {
                    Observed::Answered {
                        from_cache,
                        epsilon,
                        ..
                    } => {
                        if i > 0 {
                            assert!(from_cache, "{mechanism}: repeat {i} missed the cache");
                            assert_eq!(f64::from_bits(*epsilon), 0.0);
                        }
                    }
                    Observed::Rejected(reason) => panic!("unexpected rejection: {reason}"),
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random scripts stay bit-identical between the sequential and
    /// batched services: random shared-view traffic under vanilla, random
    /// disjoint-view traffic (a random attribute permutation per case)
    /// under the additive mechanism.
    #[test]
    fn random_batches_are_bit_identical_to_sequential(
        seed in 0u64..u64::MAX / 2,
        queries_per_analyst in 2usize..8,
        max_batch in 2usize..24,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);

        // Vanilla: every query picks any attribute — shared views galore.
        let vanilla_script: Vec<Vec<QueryRequest>> = (0..ANALYSTS)
            .map(|_| {
                (0..queries_per_analyst)
                    .map(|_| {
                        let (attr, min, max) =
                            INT_ATTRS[rng.gen_range(0..INT_ATTRS.len())];
                        let a = rng.gen_range(min..=max);
                        let b = rng.gen_range(min..=max);
                        QueryRequest::with_accuracy(
                            Query::range_count("adult", attr, a.min(b), a.max(b)),
                            rng.gen_range(300.0..5_000.0),
                        )
                    })
                    .collect()
            })
            .collect();

        // Additive: a random one-to-one analyst→attribute assignment.
        let mut order: Vec<usize> = (0..INT_ATTRS.len()).collect();
        for i in (1..order.len()).rev() {
            order.swap(i, rng.gen_range(0..=i));
        }
        let additive_script: Vec<Vec<QueryRequest>> = (0..ANALYSTS)
            .map(|a| {
                (0..queries_per_analyst)
                    .map(|_| {
                        let query = if a < order.len() {
                            let (attr, min, max) = INT_ATTRS[order[a]];
                            let lo = rng.gen_range(min..=max);
                            let hi = rng.gen_range(min..=max);
                            Query::range_count("adult", attr, lo.min(hi), lo.max(hi))
                        } else {
                            Query::count("adult").filter(Predicate::equals(
                                "sex",
                                if rng.gen::<bool>() { "Female" } else { "Male" },
                            ))
                        };
                        QueryRequest::with_accuracy(query, rng.gen_range(300.0..5_000.0))
                    })
                    .collect()
            })
            .collect();

        for (mechanism, script) in [
            (MechanismKind::Vanilla, &vanilla_script),
            (MechanismKind::AdditiveGaussian, &additive_script),
        ] {
            let sequential = run(mechanism, seed, script, 1, 0);
            let batched = run(mechanism, seed, script, max_batch, 1);
            prop_assert_eq!(
                &sequential, &batched,
                "{}: random script diverged at batch={}", mechanism, max_batch
            );
        }
    }
}
